"""Tests for the shape-check report generator."""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro.analysis.report import ShapeCheck, check_all, load_experiment, main


def write_exp(d: Path, name: str, rows) -> None:
    (d / f"{name}.json").write_text(json.dumps({"experiment": name, "rows": rows}))


@pytest.fixture
def results(tmp_path) -> Path:
    """A results directory encoding all the expected shapes."""
    write_exp(tmp_path, "table3_sequential", [
        {"instance": "A", "pb": 1.0, "pb-sym": 0.4},
        {"instance": "B", "pb": 2.0, "pb-sym": 1.9},
    ])
    write_exp(tmp_path, "fig7_breakdown", [
        {"instance": "Flu_Lr-Lb", "init_work_fraction": 0.9},
        {"instance": "PollenUS_Lr-Lb", "init_work_fraction": 0.05},
    ])
    write_exp(tmp_path, "fig8_dr_speedup", [
        {"instance": "Flu_Hr-Lb", "P4": 0.5, "P8": math.nan, "P16": math.nan},
        {"instance": "eBird_Hr-Lb", "P2": math.nan, "P4": math.nan,
         "P8": math.nan, "P16": math.nan},
    ])
    write_exp(tmp_path, "fig9_dd_overhead", [
        {"instance": "A", "k": 1, "overhead_vs_pb_sym": 1.0},
        {"instance": "A", "k": 8, "overhead_vs_pb_sym": 2.5},
    ])
    write_exp(tmp_path, "fig12_critical_path", [
        {"instance": "PollenUS_Hr-Hb", "pd": 0.55},
        {"instance": "Flu_Lr-Lb", "pd": 0.02},
    ])
    write_exp(tmp_path, "fig14_pd_rep_speedup", [
        {"instance": "Flu_Hr-Hb", "k": 1, "oom": True},
        {"instance": "Flu_Hr-Hb", "k": 2, "oom": True},
        {"instance": "Flu_Hr-Hb", "k": 16, "oom": False, "speedup_p16": 1.0},
    ])
    write_exp(tmp_path, "fig15_best", [
        {"instance": "Flu_Lr-Lb", "winner": "pb-sym-pd"},
        {"instance": "PollenUS_Hr-Mb", "winner": "pb-sym-pd-rep"},
    ])
    write_exp(tmp_path, "region_engine", [
        {"path": "threads-bbox", "dataset": "clustered", "n": 100000,
         "peak_shard_buffer_bytes": 9_000_000,
         "full_private_volumes_bytes": 33_000_000,
         "shard_bbox_cells": 1_125_000, "equivalent_rtol_1e12": True},
        {"path": "incremental-slide", "equivalent_rtol_1e9": True},
        {"path": "vb-tiles", "tile_batches": 32,
         "equivalent_rtol_1e12": True},
    ])
    return tmp_path


class TestLoadExperiment:
    def test_loads_rows(self, results):
        rows = load_experiment(results, "fig15_best")
        assert rows and rows[0]["winner"] == "pb-sym-pd"

    def test_absent_returns_none(self, tmp_path):
        assert load_experiment(tmp_path, "nope") is None


class TestCheckAll:
    def test_all_pass_on_expected_shapes(self, results):
        checks = check_all(results)
        assert all(c.passed for c in checks if c.passed is not None)
        assert sum(1 for c in checks if c.passed is not None) == 8

    def test_unrecorded_marked_unknown(self, tmp_path):
        checks = check_all(tmp_path)
        assert all(c.passed is None for c in checks)

    def test_detects_table3_violation(self, results):
        write_exp(results, "table3_sequential", [
            {"instance": "A", "pb": 1.0, "pb-sym": 5.0},  # sym slower!
        ])
        checks = {c.experiment: c for c in check_all(results)}
        assert checks["table3_sequential"].passed is False

    def test_detects_missing_oom(self, results):
        write_exp(results, "fig8_dr_speedup", [
            {"instance": "Flu_Hr-Lb", "P4": 0.5, "P8": 0.4, "P16": 0.3},
            {"instance": "eBird_Hr-Lb", "P2": 1.0},
        ])
        checks = {c.experiment: c for c in check_all(results)}
        assert checks["fig8_dr_speedup"].passed is False

    def test_detects_region_buffer_regression(self, results):
        """Bbox shard buffers at (or above) P full volumes must fail."""
        write_exp(results, "region_engine", [
            {"path": "threads-bbox", "peak_shard_buffer_bytes": 33_000_000,
             "full_private_volumes_bytes": 33_000_000,
             "shard_bbox_cells": 4_125_000, "equivalent_rtol_1e12": True},
        ])
        checks = {c.experiment: c for c in check_all(results)}
        assert checks["region_engine"].passed is False

    def test_detects_region_equivalence_failure(self, results):
        write_exp(results, "region_engine", [
            {"path": "threads-bbox", "peak_shard_buffer_bytes": 9_000_000,
             "full_private_volumes_bytes": 33_000_000,
             "shard_bbox_cells": 1_125_000, "equivalent_rtol_1e12": False},
        ])
        checks = {c.experiment: c for c in check_all(results)}
        assert checks["region_engine"].passed is False

    def test_detects_wrong_outlier(self, results):
        write_exp(results, "fig12_critical_path", [
            {"instance": "PollenUS_Hr-Hb", "pd": 0.05},
            {"instance": "Flu_Lr-Lb", "pd": 0.30},
        ])
        checks = {c.experiment: c for c in check_all(results)}
        assert checks["fig12_critical_path"].passed is False


class TestMain:
    def test_exit_zero_on_pass(self, results, capsys):
        assert main([str(results)]) == 0
        out = capsys.readouterr().out
        assert "shape checks" in out
        assert "0 shape failures" in out

    def test_exit_one_on_failure(self, results):
        write_exp(results, "fig15_best", [
            {"instance": "Flu_Lr-Lb", "winner": "pb-sym-dr"},
        ])
        assert main([str(results)]) == 1

    def test_exit_two_without_directory(self, tmp_path):
        assert main([str(tmp_path / "ghost")]) == 2

    def test_describe_format(self):
        c = ShapeCheck("x", "claim text", True)
        assert "ok" in c.describe() and "claim text" in c.describe()
