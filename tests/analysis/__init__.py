"""Test package marker (enables absolute `tests.*` imports under pytest)."""
