"""Tests for the output validation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import pb_sym, vb
from repro.analysis.validate import (
    assert_equivalent,
    check_density,
    compare_volumes,
)
from repro.core import DomainSpec, GridSpec, PointSet, Volume

from tests.helpers import make_points


@pytest.fixture
def grid():
    return GridSpec(DomainSpec.from_voxels(14, 12, 16), hs=2.5, ht=2.0)


class TestCompareVolumes:
    def test_identical_match(self, grid):
        pts = make_points(grid, 20, seed=0)
        a = pb_sym(pts, grid)
        rep = compare_volumes(a, a)
        assert rep.allclose
        assert rep.max_abs_diff == 0.0

    def test_algorithms_agree(self, grid):
        pts = make_points(grid, 20, seed=0)
        rep = compare_volumes(vb(pts, grid), pb_sym(pts, grid))
        assert rep.allclose
        assert "MATCH" in rep.describe()

    def test_detects_mismatch(self, grid):
        pts = make_points(grid, 20, seed=0)
        a = pb_sym(pts, grid)
        bad = a.data.copy()
        bad[3, 3, 3] += 0.5
        rep = compare_volumes(a, bad)
        assert not rep.allclose
        assert rep.max_abs_diff == pytest.approx(0.5)
        assert "MISMATCH" in rep.describe()

    def test_accepts_raw_arrays(self):
        rep = compare_volumes(np.ones((2, 2, 2)), np.ones((2, 2, 2)))
        assert rep.allclose

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="shape"):
            compare_volumes(np.ones((2, 2)), np.ones((3, 2)))

    def test_relative_diff_scale(self):
        a = np.full((2, 2, 2), 10.0)
        b = np.full((2, 2, 2), 11.0)
        rep = compare_volumes(a, b)
        assert rep.max_rel_diff == pytest.approx(1 / 11)


class TestAssertEquivalent:
    def test_passes_silently(self, grid):
        pts = make_points(grid, 10, seed=1)
        assert_equivalent(vb(pts, grid), pb_sym(pts, grid))

    def test_raises_with_context(self, grid):
        a = np.zeros((2, 2, 2))
        b = np.ones((2, 2, 2))
        with pytest.raises(AssertionError, match="my-test"):
            assert_equivalent(a, b, context="my-test")


class TestCheckDensity:
    def test_valid_volume_passes(self, grid):
        pts = make_points(grid, 20, seed=2)
        check_density(pb_sym(pts, grid))

    def test_rejects_nan(self):
        bad = np.zeros((2, 2, 2))
        bad[0, 0, 0] = np.nan
        with pytest.raises(AssertionError, match="non-finite"):
            check_density(bad)

    def test_rejects_negative(self):
        bad = np.zeros((2, 2, 2))
        bad[0, 0, 0] = -1e-3
        with pytest.raises(AssertionError, match="negative"):
            check_density(bad)

    def test_mass_check(self):
        grid = GridSpec(DomainSpec.from_voxels(24, 24, 24), hs=3.0, ht=3.0)
        pts = PointSet(np.array([[12.0, 12.0, 12.0]]))
        res = pb_sym(pts, grid)
        check_density(res, expect_mass=1.0, mass_rel_tol=0.3)
        with pytest.raises(AssertionError, match="mass"):
            check_density(res, expect_mass=5.0, mass_rel_tol=0.1)

    def test_mass_check_needs_geometry(self):
        with pytest.raises(ValueError, match="Volume"):
            check_density(np.zeros((2, 2, 2)), expect_mass=1.0)
