"""Tests for the figure metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import pb_sym
from repro.analysis.metrics import (
    dd_work_overhead,
    load_imbalance,
    pd_critical_path_ratio,
    phase_breakdown,
    replication_stats,
    speedup,
)
from repro.core import DomainSpec, GridSpec
from repro.parallel import pb_sym_pd_rep

from tests.helpers import make_clustered_points, make_points


@pytest.fixture
def grid():
    return GridSpec(DomainSpec.from_voxels(36, 36, 40), hs=2.5, ht=2.0)


class TestPhaseBreakdown:
    def test_fractions_sum_to_one(self, grid):
        pts = make_points(grid, 50, seed=0)
        res = pb_sym(pts, grid)
        frac = phase_breakdown(res)
        assert sum(frac.values()) == pytest.approx(1.0)
        assert set(frac) == {"init", "compute"}

    def test_empty_timer(self):
        from repro.algorithms.base import STKDEResult
        from repro.core import PhaseTimer, Volume, WorkCounter

        g = GridSpec(DomainSpec.from_voxels(4, 4, 4), hs=1, ht=1)
        res = STKDEResult(Volume(np.zeros(g.shape), g), "x", PhaseTimer(), WorkCounter())
        assert phase_breakdown(res) == {}


class TestSpeedup:
    def test_uses_makespan_when_present(self, grid):
        pts = make_points(grid, 30, seed=1)
        res = pb_sym(pts, grid)
        res.meta["makespan"] = res.elapsed / 4
        assert speedup(res.elapsed, res) == pytest.approx(4.0)

    def test_falls_back_to_elapsed(self, grid):
        pts = make_points(grid, 30, seed=1)
        res = pb_sym(pts, grid)
        assert speedup(res.elapsed, res) == pytest.approx(1.0)

    def test_rejects_zero_runtime(self, grid):
        pts = make_points(grid, 5, seed=2)
        res = pb_sym(pts, grid)
        res.meta["makespan"] = 0.0
        with pytest.raises(ValueError):
            speedup(1.0, res)


class TestDDOverhead:
    def test_no_overhead_single_block(self, grid):
        pts = make_points(grid, 60, seed=3)
        m = dd_work_overhead(pts, grid, (1, 1, 1))
        assert m["replication_factor"] == 1.0
        assert m["invariant_overhead"] == pytest.approx(1.0)

    def test_overhead_grows_with_decomposition(self, grid):
        """Figure 9's monotone trend."""
        pts = make_points(grid, 80, seed=4)
        vals = [
            dd_work_overhead(pts, grid, (k, k, k))["invariant_overhead"]
            for k in (1, 2, 4, 8)
        ]
        assert vals[0] < vals[1] < vals[2] < vals[3]
        assert vals[0] == pytest.approx(1.0)

    def test_replication_below_block_count(self, grid):
        pts = make_points(grid, 40, seed=5)
        m = dd_work_overhead(pts, grid, (4, 4, 4))
        assert 1.0 <= m["replication_factor"] <= 64


class TestPDCriticalPath:
    def test_ratio_in_unit_interval(self, grid):
        pts = make_clustered_points(grid, 200, seed=6)
        r = pd_critical_path_ratio(pts, grid, (8, 8, 8), "parity")
        assert 0.0 < r <= 1.0

    def test_sched_not_worse(self, grid):
        """Figure 12: load-aware colouring marginally shortens the path."""
        pts = make_clustered_points(grid, 400, k=2, seed=7)
        r_pd = pd_critical_path_ratio(pts, grid, (8, 8, 8), "parity")
        r_sched = pd_critical_path_ratio(pts, grid, (8, 8, 8), "sched")
        assert r_sched <= r_pd + 1e-12

    def test_single_block_ratio_is_one(self, grid):
        pts = make_points(grid, 30, seed=8)
        assert pd_critical_path_ratio(pts, grid, (1, 1, 1)) == pytest.approx(1.0)

    def test_clustered_longer_path_than_uniform(self, grid):
        uni = make_points(grid, 400, seed=9)
        clu = make_clustered_points(grid, 400, k=1, seed=9)
        r_uni = pd_critical_path_ratio(uni, grid, (8, 8, 8), "parity")
        r_clu = pd_critical_path_ratio(clu, grid, (8, 8, 8), "parity")
        assert r_clu > r_uni

    def test_unknown_scheduler(self, grid):
        pts = make_points(grid, 10, seed=10)
        with pytest.raises(ValueError, match="scheduler"):
            pd_critical_path_ratio(pts, grid, (4, 4, 4), "magic")


class TestLoadImbalance:
    def test_balanced(self):
        s = load_imbalance([2.0, 2.0, 2.0])
        assert s.imbalance == pytest.approx(1.0)
        assert s.cv == pytest.approx(0.0)

    def test_imbalanced(self):
        s = load_imbalance([10.0, 1.0, 1.0])
        assert s.imbalance == pytest.approx(10.0 / 4.0)

    def test_ignores_zeros(self):
        s = load_imbalance([0.0, 4.0, 0.0, 4.0])
        assert s.mean == pytest.approx(4.0)

    def test_empty(self):
        s = load_imbalance([])
        assert s.imbalance == 1.0


class TestReplicationStats:
    def test_summarises_rep_run(self, grid):
        pts = make_clustered_points(grid, 400, k=1, seed=11)
        res = pb_sym_pd_rep(pts, grid, P=8, decomposition=(8, 8, 8))
        s = replication_stats(res)
        assert s["blocks"] == res.meta["occupied_blocks"]
        assert s["max"] >= 1.0

    def test_handles_non_rep_result(self, grid):
        pts = make_points(grid, 20, seed=12)
        res = pb_sym(pts, grid)
        s = replication_stats(res)
        assert s["blocks"] == 0.0
