"""Tests for the Section 6.5 parametric model and strategy selector."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.algorithms import pb_sym
from repro.analysis.model import CostModel, MachineModel, select_strategy
from repro.core import DomainSpec, GridSpec

from tests.helpers import make_clustered_points, make_points


@pytest.fixture(scope="module")
def machine():
    return MachineModel.calibrate()


@pytest.fixture
def grid():
    return GridSpec(DomainSpec.from_voxels(40, 40, 44), hs=3.0, ht=2.5)


class TestMachineModel:
    def test_calibration_positive(self, machine):
        assert machine.c_mem > 0
        assert machine.c_point > 0
        assert machine.c_cell > 0
        assert machine.c_pair > 0

    def test_sane_magnitudes(self, machine):
        # Memory writes are ns-scale per voxel; dispatch is us-scale.
        assert machine.c_mem < 1e-6
        assert 1e-7 < machine.c_point < 1e-2
        assert machine.c_cell < 1e-6
        # A (voxel, point) pair costs more than a stamped cell (two kernel
        # evaluations + distance test vs a multiply-add) but is still
        # sub-microsecond vectorised.
        assert machine.c_pair < 1e-6
        assert machine.c_tile >= 0.0


class TestCostModelPredictions:
    def test_pb_sym_prediction_within_factor(self, grid, machine):
        """The model predicts the sequential runtime within ~4x — enough
        to rank strategies, which is all Section 6.5 asks of it."""
        pts = make_points(grid, 600, seed=0)
        model = CostModel(grid, pts, machine)
        predicted = model.predict_pb_sym()
        measured = pb_sym(pts, grid).elapsed
        assert predicted == pytest.approx(measured, rel=3.0)

    def test_dr_infeasible_without_memory(self, grid, machine):
        pts = make_points(grid, 50, seed=1)
        model = CostModel(grid, pts, machine,
                          memory_budget_bytes=2 * grid.grid_bytes)
        p = model.predict_dr(P=8)
        assert not p.feasible
        assert math.isinf(p.seconds)

    def test_dr_feasible_with_memory(self, grid, machine):
        pts = make_points(grid, 50, seed=1)
        model = CostModel(grid, pts, machine)
        p = model.predict_dr(P=4)
        assert p.feasible and p.seconds > 0

    def test_dd_reports_clamped_decomposition(self, grid, machine):
        pts = make_points(grid, 50, seed=2)
        model = CostModel(grid, pts, machine)
        p = model.predict_dd((64, 64, 64), P=4)
        assert p.decomposition == (40, 40, 44)

    def test_pd_respects_bandwidth_constraint(self, grid, machine):
        pts = make_points(grid, 50, seed=3)
        model = CostModel(grid, pts, machine)
        p = model.predict_pd((16, 16, 16), P=4)
        A, B, C = p.decomposition
        assert A <= grid.Gx // (2 * grid.Hs + 1)

    def test_sched_not_slower_than_parity(self, grid, machine):
        pts = make_clustered_points(grid, 800, k=2, seed=4)
        model = CostModel(grid, pts, machine)
        parity = model.predict_pd((8, 8, 8), P=8, scheduler="parity")
        sched = model.predict_pd((8, 8, 8), P=8, scheduler="sched")
        assert sched.seconds <= parity.seconds * 1.05

    def test_rep_not_slower_than_sched_on_hot_cluster(self, grid, machine):
        """REP exists to beat SCHED exactly when one cluster dominates."""
        pts = make_clustered_points(grid, 900, k=1, seed=5)
        model = CostModel(grid, pts, machine)
        sched = model.predict_pd((8, 8, 8), P=8, scheduler="sched")
        rep = model.predict_pd_rep((8, 8, 8), P=8)
        assert rep.seconds <= sched.seconds * 1.05

    def test_rep_infeasible_under_tight_budget_coarse(self, grid, machine):
        pts = make_clustered_points(grid, 500, k=1, seed=6)
        model = CostModel(grid, pts, machine,
                          memory_budget_bytes=int(1.05 * grid.grid_bytes))
        p = model.predict_pd_rep((1, 1, 1), P=8)
        assert not p.feasible


class TestTileAndBboxPricing:
    """Region-engine pricing: tile batches and bbox-shard memory."""

    def test_vb_prediction_ranks_far_above_pb_sym(self, grid, machine):
        """The model must reproduce Table 3's ordering: VB orders of
        magnitude slower than PB-SYM on a realistic instance."""
        pts = make_points(grid, 500, seed=20)
        model = CostModel(grid, pts, machine)
        assert model.predict_vb().seconds > 10 * model.predict_pb_sym()

    def test_vb_prediction_within_factor(self, machine):
        """Tile pricing predicts a real VB run well enough to rank."""
        from repro.algorithms.vb import vb

        g = GridSpec(DomainSpec.from_voxels(16, 16, 16), hs=2.5, ht=2.0)
        pts = make_points(g, 300, seed=21)
        model = CostModel(g, pts, machine)
        predicted = model.predict_vb().seconds
        measured = vb(pts, g).elapsed
        assert predicted == pytest.approx(measured, rel=4.0)

    def test_vb_dec_cheaper_than_vb_on_clustered(self, grid, machine):
        pts = make_clustered_points(grid, 800, k=1, seed=22)
        model = CostModel(grid, pts, machine)
        assert model.predict_vb_dec().seconds < model.predict_vb().seconds

    def test_vb_charges_tile_dispatch(self, grid, machine):
        pts = make_points(grid, 200, seed=23)
        model = CostModel(grid, pts, machine)
        coarse = model.predict_vb(voxel_chunk=4096, point_block=512)
        fine = model.predict_vb(voxel_chunk=64, point_block=8)
        # Same pairs, many more tile batches: fine tiling must not be free.
        assert fine.seconds >= coarse.seconds

    def test_pb_sym_threads_charges_bbox_memory(self, grid, machine):
        from repro.core.regions import plan_stamp_shards

        pts = make_clustered_points(grid, 600, k=2, seed=24)
        plan = plan_stamp_shards(grid, pts.coords, 8)
        need = grid.grid_bytes + plan.buffer_bytes
        model = CostModel(grid, pts, machine, memory_budget_bytes=need)
        assert model.predict_pb_sym_threads(8).feasible
        tight = CostModel(grid, pts, machine, memory_budget_bytes=need - 1)
        p = tight.predict_pb_sym_threads(8)
        assert not p.feasible
        assert "bbox" in p.reason

    def test_pb_sym_threads_feasible_where_dr_is_not(self, grid, machine):
        """The bbox-shard memory story: a budget that rules DR out (P+1
        full volumes) can still afford the bbox-sharded threads path."""
        pts = make_clustered_points(grid, 600, k=1, seed=25)
        model = CostModel(grid, pts, machine,
                          memory_budget_bytes=3 * grid.grid_bytes)
        assert not model.predict_dr(P=8).feasible
        assert model.predict_pb_sym_threads(8).feasible

    def test_select_strategy_ranks_pb_sym_threads(self, grid, machine):
        pts = make_clustered_points(grid, 400, seed=26)
        _, ranked = select_strategy(grid, pts, 8, machine=machine)
        assert any(p.algorithm == "pb-sym-threads" for p in ranked)


class TestSelectStrategy:
    def test_returns_feasible_best(self, grid, machine):
        pts = make_clustered_points(grid, 400, seed=7)
        best, ranked = select_strategy(grid, pts, 8, machine=machine)
        assert best.feasible
        assert best.seconds == min(p.seconds for p in ranked if p.feasible)

    def test_memory_budget_rules_out_dr(self, grid, machine):
        pts = make_points(grid, 100, seed=8)
        best, ranked = select_strategy(
            grid, pts, 8, machine=machine,
            memory_budget_bytes=3 * grid.grid_bytes,
        )
        dr = [p for p in ranked if p.algorithm == "pb-sym-dr"]
        assert dr and not dr[0].feasible
        assert best.algorithm != "pb-sym-dr"

    def test_ranking_sorted(self, grid, machine):
        pts = make_points(grid, 100, seed=9)
        _, ranked = select_strategy(grid, pts, 4, machine=machine)
        secs = [p.seconds for p in ranked]
        assert secs == sorted(secs)

    def test_selector_regret_small(self, grid, machine):
        """The model's pick should be close to the oracle best when the
        candidates are actually run (simulated, P=4)."""
        from repro.parallel import pb_sym_dd, pb_sym_dr, pb_sym_pd_sched

        pts = make_clustered_points(grid, 700, seed=10)
        best, _ = select_strategy(grid, pts, 4, machine=machine)

        runs = {
            "pb-sym-dr": pb_sym_dr(pts, grid, P=4).meta["makespan"],
            "pb-sym-dd": pb_sym_dd(pts, grid, P=4, decomposition=(8, 8, 8)).meta["makespan"],
            "pb-sym-pd-sched": pb_sym_pd_sched(pts, grid, P=4, decomposition=(8, 8, 8)).meta["makespan"],
        }
        oracle = min(runs.values())
        picked = runs.get(best.algorithm)
        if picked is not None:
            assert picked <= oracle * 3.0  # generous: ranking, not regression

    def test_describe_mentions_infeasibility(self, grid, machine):
        pts = make_points(grid, 30, seed=11)
        model = CostModel(grid, pts, machine, memory_budget_bytes=grid.grid_bytes)
        p = model.predict_dr(P=8)
        assert "infeasible" in p.describe()


class TestSlideAndMergePredictors:
    """The slide-pipeline predictors: slab retirement vs survivor restamp
    vs uncached negative stamp, and the segment-merge economics."""

    def test_slab_wins_when_little_straddles(self, grid, machine):
        pts = make_points(grid, 2000, seed=20)
        model = CostModel(grid, pts, machine)
        p = model.predict_slide(
            n_expired=200, n_survivors=1800, bbox_cells=grid.n_voxels // 2,
            n_straddle_survivors=100,
        )
        # Restamping 1800 survivors costs kernel work; subtracting slabs
        # and restamping 100 straddlers is memory-rate plus a thin batch.
        assert p.slab_seconds < p.restamp_seconds
        assert p.best in ("slab", "negative")
        assert p.slab_seconds > 0 and p.negative_seconds > 0

    def test_negative_wins_for_tiny_expiry_of_uncached_scale(self, grid, machine):
        pts = make_points(grid, 2000, seed=21)
        model = CostModel(grid, pts, machine)
        # One expired point under a huge cache box: stamping the single
        # negative beats touching the box memory.
        p = model.predict_slide(
            n_expired=1, n_survivors=1999, bbox_cells=grid.n_voxels,
            expired_slab_cells=grid.n_voxels // 16,
            straddle_cells=grid.n_voxels // 16, n_straddle_survivors=120,
        )
        assert p.negative_seconds < p.restamp_seconds

    def test_geometric_defaults_fill_in(self, grid, machine):
        pts = make_points(grid, 500, seed=22)
        model = CostModel(grid, pts, machine)
        p = model.predict_slide(
            n_expired=100, n_survivors=400, bbox_cells=grid.n_voxels // 3
        )
        assert p.slab_seconds > 0 and p.restamp_seconds > 0
        assert math.isfinite(p.slab_seconds)

    def test_merge_pays_for_chatty_feeds(self, grid, machine):
        import dataclasses

        pts = make_points(grid, 1000, seed=23)
        # The write-side calibration leaves the serving probe cost at 0
        # (calibrate_serving fills it); pin one for the economics check.
        model = CostModel(
            grid, pts, dataclasses.replace(machine, c_qprobe=1e-6)
        )
        many = model.predict_merge(n_rows=1000, n_segments=64, n_groups=200)
        few = model.predict_merge(n_rows=1000, n_segments=2, n_groups=200)
        assert many.merge_seconds > 0
        # More segments merged away => more probe savings per batch.
        assert (
            many.probe_seconds_saved_per_batch
            > few.probe_seconds_saved_per_batch >= 0
        )
        assert many.breakeven_batches <= few.breakeven_batches
        if many.probe_seconds_saved_per_batch > 0:
            assert many.pays_within(many.breakeven_batches + 1)

    def test_merge_of_nothing_never_pays(self, grid, machine):
        pts = make_points(grid, 100, seed=24)
        model = CostModel(grid, pts, machine)
        p = model.predict_merge(n_rows=100, n_segments=1, n_groups=50)
        assert p.probe_seconds_saved_per_batch == 0.0
        assert p.breakeven_batches == math.inf
        assert not p.pays_within(1e12)
