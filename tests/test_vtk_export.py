"""Tests for the VTK structured-points exporter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DomainSpec, GridSpec, Volume
from repro.viz.export import save_vtk


def make_volume():
    dom = DomainSpec(gx=6.0, gy=4.0, gt=10.0, sres=2.0, tres=5.0,
                     x0=100.0, y0=-50.0, t0=7.0)
    grid = GridSpec(dom, hs=2.0, ht=5.0)
    rng = np.random.default_rng(0)
    return Volume(rng.random(grid.shape), grid)


class TestSaveVTK:
    def test_writes_file_with_suffix(self, tmp_path):
        v = make_volume()
        out = save_vtk(v, tmp_path / "vol")
        assert out.suffix == ".vtk"
        assert out.exists()

    def test_header_fields(self, tmp_path):
        v = make_volume()
        out = save_vtk(v, tmp_path / "vol.vtk", name="dengue")
        text = out.read_text().splitlines()
        assert text[0].startswith("# vtk DataFile")
        assert "DATASET STRUCTURED_POINTS" in text
        assert f"DIMENSIONS {v.grid.Gx} {v.grid.Gy} {v.grid.Gt}" in text
        assert "SCALARS dengue double 1" in text

    def test_origin_is_first_voxel_center(self, tmp_path):
        v = make_volume()
        out = save_vtk(v, tmp_path / "vol.vtk")
        origin_line = next(l for l in out.read_text().splitlines()
                           if l.startswith("ORIGIN"))
        ox, oy, ot = (float(x) for x in origin_line.split()[1:])
        assert ox == pytest.approx(101.0)  # x0 + sres/2
        assert oy == pytest.approx(-49.0)
        assert ot == pytest.approx(9.5)  # t0 + tres/2

    def test_spacing_matches_resolution(self, tmp_path):
        v = make_volume()
        out = save_vtk(v, tmp_path / "vol.vtk")
        spacing = next(l for l in out.read_text().splitlines()
                       if l.startswith("SPACING"))
        sx, sy, st = (float(x) for x in spacing.split()[1:])
        assert (sx, sy, st) == (2.0, 2.0, 5.0)

    def test_data_round_trip_x_fastest(self, tmp_path):
        v = make_volume()
        out = save_vtk(v, tmp_path / "vol.vtk")
        lines = out.read_text().splitlines()
        start = lines.index("LOOKUP_TABLE default") + 1
        values = np.array(
            [float(x) for line in lines[start:] for x in line.split()]
        )
        assert values.size == v.grid.n_voxels
        # x varies fastest: value at flat index 1 is data[1, 0, 0].
        assert values[0] == pytest.approx(v.data[0, 0, 0], rel=1e-6)
        assert values[1] == pytest.approx(v.data[1, 0, 0], rel=1e-6)
        assert values[v.grid.Gx] == pytest.approx(v.data[0, 1, 0], rel=1e-6)
        np.testing.assert_allclose(
            values.reshape(v.grid.Gt, v.grid.Gy, v.grid.Gx).transpose(2, 1, 0),
            v.data, rtol=1e-6,
        )

    def test_point_count_declared(self, tmp_path):
        v = make_volume()
        out = save_vtk(v, tmp_path / "vol.vtk")
        assert f"POINT_DATA {v.grid.n_voxels}" in out.read_text()

    def test_creates_parent_dirs(self, tmp_path):
        v = make_volume()
        out = save_vtk(v, tmp_path / "a" / "b" / "vol.vtk")
        assert out.exists()
