"""Shared fixtures for the test suite.

Grids here are deliberately small (a few tens of voxels per axis) so that
even the O(voxels x points) gold-standard VB runs in milliseconds; the
benchmark harness, not the test suite, is where realistic sizes live.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DomainSpec, GridSpec, PointSet

# Re-exported for backwards compatibility; new tests should import these
# from ``tests.helpers`` directly.
from tests.helpers import make_clustered_points, make_points  # noqa: F401


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_domain() -> DomainSpec:
    """A 16x14x20 voxel domain with unit resolutions."""
    return DomainSpec.from_voxels(16, 14, 20)


@pytest.fixture
def small_grid(small_domain) -> GridSpec:
    return GridSpec(small_domain, hs=2.7, ht=2.2)


@pytest.fixture
def physical_domain() -> DomainSpec:
    """A domain with non-unit resolutions and a non-zero origin."""
    return DomainSpec(
        gx=5000.0, gy=4200.0, gt=90.0, sres=250.0, tres=3.0,
        x0=1000.0, y0=-500.0, t0=10.0,
    )


@pytest.fixture
def physical_grid(physical_domain) -> GridSpec:
    return GridSpec(physical_domain, hs=800.0, ht=7.0)


@pytest.fixture
def uniform_points(small_grid) -> PointSet:
    return make_points(small_grid, 30)


@pytest.fixture
def clustered_points(small_grid) -> PointSet:
    return make_clustered_points(small_grid, 60)
