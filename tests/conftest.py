"""Shared fixtures for the test suite.

Grids here are deliberately small (a few tens of voxels per axis) so that
even the O(voxels x points) gold-standard VB runs in milliseconds; the
benchmark harness, not the test suite, is where realistic sizes live.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DomainSpec, GridSpec, PointSet


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_domain() -> DomainSpec:
    """A 16x14x20 voxel domain with unit resolutions."""
    return DomainSpec.from_voxels(16, 14, 20)


@pytest.fixture
def small_grid(small_domain) -> GridSpec:
    return GridSpec(small_domain, hs=2.7, ht=2.2)


@pytest.fixture
def physical_domain() -> DomainSpec:
    """A domain with non-unit resolutions and a non-zero origin."""
    return DomainSpec(
        gx=5000.0, gy=4200.0, gt=90.0, sres=250.0, tres=3.0,
        x0=1000.0, y0=-500.0, t0=10.0,
    )


@pytest.fixture
def physical_grid(physical_domain) -> GridSpec:
    return GridSpec(physical_domain, hs=800.0, ht=7.0)


def make_points(grid: GridSpec, n: int, seed: int = 0) -> PointSet:
    """Uniform random points spanning the whole domain box."""
    rng = np.random.default_rng(seed)
    d = grid.domain
    lo = [d.x0, d.y0, d.t0]
    hi = [d.x0 + d.gx, d.y0 + d.gy, d.t0 + d.gt]
    return PointSet(rng.uniform(lo, hi, size=(n, 3)))


def make_clustered_points(grid: GridSpec, n: int, k: int = 3, seed: int = 0) -> PointSet:
    """Clustered points (mixture of Gaussians), mimicking real datasets."""
    rng = np.random.default_rng(seed)
    d = grid.domain
    lo = np.array([d.x0, d.y0, d.t0])
    span = np.array([d.gx, d.gy, d.gt])
    centers = rng.uniform(lo + 0.2 * span, lo + 0.8 * span, size=(k, 3))
    which = rng.integers(0, k, size=n)
    pts = centers[which] + rng.normal(0, 0.08, size=(n, 3)) * span
    pts = np.clip(pts, lo, lo + span * (1 - 1e-9))
    return PointSet(pts)


@pytest.fixture
def uniform_points(small_grid) -> PointSet:
    return make_points(small_grid, 30)


@pytest.fixture
def clustered_points(small_grid) -> PointSet:
    return make_clustered_points(small_grid, 60)
