"""Tests for query execution: direct sums, trilinear lookup, regions.

The acceptance-critical property lives here: a direct kernel sum at a
voxel center reproduces the full-grid stamped volume's value at that
voxel to ``rtol=1e-6`` (measured slack is ~1e-12 — both paths share
``masked_kernel_product``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.pb_sym import pb_sym
from repro.core import WorkCounter
from repro.core.grid import VoxelWindow
from repro.core.kernels import available_kernels, get_kernel
from repro.serve.engine import (
    direct_region,
    direct_sum,
    direct_sum_grouped,
    region_view,
    sample_volume,
    slice_window,
)
from repro.serve.index import BucketIndex
from tests.helpers import make_clustered_points, make_points


def voxel_center_queries(grid, stride=3):
    """A lattice of voxel centers and their integer voxel coordinates."""
    X, Y, T = np.meshgrid(
        np.arange(0, grid.Gx, stride),
        np.arange(0, grid.Gy, stride),
        np.arange(0, grid.Gt, stride),
        indexing="ij",
    )
    vox = np.column_stack([X.ravel(), Y.ravel(), T.ravel()])
    q = np.column_stack([
        grid.x_centers()[vox[:, 0]],
        grid.y_centers()[vox[:, 1]],
        grid.t_centers()[vox[:, 2]],
    ])
    return q, vox


class TestDirectSum:
    @pytest.mark.parametrize("kernel", available_kernels())
    def test_matches_full_grid_stamp_at_voxel_centers(self, small_grid, kernel):
        pts = make_clustered_points(small_grid, 80, seed=20)
        ref = pb_sym(pts, small_grid, kernel=kernel)
        idx = BucketIndex(small_grid, pts.coords)
        q, vox = voxel_center_queries(small_grid)
        dens = direct_sum(
            idx, q, get_kernel(kernel), small_grid.normalization(pts.n)
        )
        np.testing.assert_allclose(
            dens, ref.data[vox[:, 0], vox[:, 1], vox[:, 2]],
            rtol=1e-6, atol=1e-18,
        )

    def test_off_grid_queries_are_exact(self, small_grid):
        """Arbitrary (non-voxel-center) locations match brute force."""
        pts = make_points(small_grid, 60, seed=21)
        idx = BucketIndex(small_grid, pts.coords)
        kern = get_kernel("epanechnikov")
        rng = np.random.default_rng(22)
        d = small_grid.domain
        q = rng.uniform([d.x0, d.y0, d.t0],
                        [d.x0 + d.gx, d.y0 + d.gy, d.t0 + d.gt], size=(25, 3))
        norm = small_grid.normalization(pts.n)
        dens = direct_sum(idx, q, kern, norm)
        hs, ht = small_grid.hs, small_grid.ht
        for qi, di in zip(q, dens):
            dx = (qi[0] - pts.coords[:, 0]) / hs
            dy = (qi[1] - pts.coords[:, 1]) / hs
            dt = (qi[2] - pts.coords[:, 2]) / ht
            inside = (dx * dx + dy * dy < 1.0) & (np.abs(dt) <= 1.0)
            brute = norm * np.sum(
                kern.spatial(dx, dy)[inside] * kern.temporal(dt)[inside]
            )
            assert di == pytest.approx(brute, rel=1e-9, abs=1e-18)

    def test_weighted_sum(self, small_grid):
        pts = make_points(small_grid, 40, seed=23)
        w = np.linspace(0.2, 3.0, 40)
        idx = BucketIndex(small_grid, pts.coords, w)
        idx_unit = BucketIndex(small_grid, pts.coords)
        kern = get_kernel("epanechnikov")
        q = pts.coords[:10] + 0.1
        # Weighted with unit weights equals the unweighted path.
        np.testing.assert_allclose(
            direct_sum(BucketIndex(small_grid, pts.coords, np.ones(40)),
                       q, kern, 1.0),
            direct_sum(idx_unit, q, kern, 1.0), rtol=1e-14,
        )
        # Doubling every weight doubles the (unnormalised) sum.
        np.testing.assert_allclose(
            direct_sum(BucketIndex(small_grid, pts.coords, 2 * w), q, kern, 1.0),
            2.0 * direct_sum(idx, q, kern, 1.0), rtol=1e-14,
        )

    def test_counts_work(self, small_grid):
        pts = make_points(small_grid, 30, seed=24)
        idx = BucketIndex(small_grid, pts.coords)
        c = WorkCounter()
        direct_sum(idx, pts.coords[:5], get_kernel("epanechnikov"), 1.0, c)
        assert c.spatial_evals > 0 and c.temporal_evals > 0

    def test_empty_and_bad_input(self, small_grid):
        idx = BucketIndex(small_grid, np.empty((0, 3)))
        out = direct_sum(idx, np.array([[1.0, 1.0, 1.0]]),
                         get_kernel("epanechnikov"), 1.0)
        np.testing.assert_array_equal(out, [0.0])
        with pytest.raises(ValueError, match=r"\(m, 3\)"):
            direct_sum(idx, np.zeros((3, 2)), get_kernel("epanechnikov"), 1.0)


class TestCohortEngine:
    """Satellite acceptance: the cohort-vectorised engine equals the
    retained per-group walk at ``rtol=1e-12`` on random and adversarial
    batches (in practice the two add the same numbers in the same order,
    so they are bit-identical)."""

    def _check(self, index, queries, kernel="epanechnikov", norm=1.0):
        kern = get_kernel(kernel)
        a = direct_sum(index, queries, kern, norm)
        b = direct_sum_grouped(index, queries, kern, norm)
        np.testing.assert_allclose(a, b, rtol=1e-12, atol=0.0)
        return a

    @pytest.mark.parametrize("kernel", available_kernels())
    def test_random_batches(self, small_grid, kernel):
        pts = make_clustered_points(small_grid, 150, seed=70)
        idx = BucketIndex(small_grid, pts.coords)
        rng = np.random.default_rng(71)
        d = small_grid.domain
        q = rng.uniform([d.x0, d.y0, d.t0],
                        [d.x0 + d.gx, d.y0 + d.gy, d.t0 + d.gt],
                        size=(300, 3))
        self._check(idx, q, kernel, small_grid.normalization(pts.n))

    def test_all_same_cell(self, small_grid):
        """Adversarial: every query in one cell — one group, one cohort."""
        pts = make_clustered_points(small_grid, 120, seed=72)
        idx = BucketIndex(small_grid, pts.coords)
        rng = np.random.default_rng(73)
        d = small_grid.domain
        # Strictly inside index cell (1, 1, 1).
        base = np.array([
            d.x0 + 1.5 * small_grid.hs,
            d.y0 + 1.5 * small_grid.hs,
            d.t0 + 1.5 * small_grid.ht,
        ])
        jitter = rng.uniform(-0.4, 0.4, size=(64, 3))
        q = base[None, :] + jitter * np.array(
            [small_grid.hs, small_grid.hs, small_grid.ht]
        )
        assert idx.group_count(q) == 1
        c = WorkCounter()
        a = direct_sum(idx, q, get_kernel("epanechnikov"), 1.0, c)
        np.testing.assert_allclose(
            a, direct_sum_grouped(idx, q, get_kernel("epanechnikov"), 1.0),
            rtol=1e-12, atol=0.0,
        )
        assert c.query_cohorts == 1  # a co-located batch is one round

    def test_all_distinct_cells(self, small_grid):
        """Adversarial: one query per cell — groups cannot merge, only
        cohorts (equal candidate counts) can."""
        pts = make_clustered_points(small_grid, 200, seed=74)
        idx = BucketIndex(small_grid, pts.coords)
        d = small_grid.domain
        # One query per distinct index cell center.
        qs = []
        for cx in range(idx.nx):
            for cy in range(idx.ny):
                for ct in range(idx.nt):
                    qs.append([
                        d.x0 + (cx + 0.5) * small_grid.hs,
                        d.y0 + (cy + 0.5) * small_grid.hs,
                        d.t0 + (ct + 0.5) * small_grid.ht,
                    ])
        q = np.array(qs)
        assert idx.group_count(q) == q.shape[0]  # truly all-distinct
        c = WorkCounter()
        a = direct_sum(idx, q, get_kernel("epanechnikov"), 1.0, c)
        np.testing.assert_allclose(
            a, direct_sum_grouped(idx, q, get_kernel("epanechnikov"), 1.0),
            rtol=1e-12, atol=0.0,
        )
        assert c.query_cohorts <= idx.cohort_count(q)

    def test_weighted_cohorts(self, small_grid):
        pts = make_points(small_grid, 80, seed=75)
        w = np.linspace(0.25, 4.0, 80)
        idx = BucketIndex(small_grid, pts.coords, w)
        rng = np.random.default_rng(76)
        d = small_grid.domain
        q = rng.uniform([d.x0, d.y0, d.t0],
                        [d.x0 + d.gx, d.y0 + d.gy, d.t0 + d.gt],
                        size=(120, 3))
        self._check(idx, q)

    def test_slab_chunking_is_exact(self, small_grid):
        """Tiny slab caps force the chunked path; answers are unchanged."""
        pts = make_clustered_points(small_grid, 150, seed=77)
        idx = BucketIndex(small_grid, pts.coords)
        rng = np.random.default_rng(78)
        d = small_grid.domain
        q = rng.uniform([d.x0, d.y0, d.t0],
                        [d.x0 + d.gx, d.y0 + d.gy, d.t0 + d.gt],
                        size=(200, 3))
        kern = get_kernel("epanechnikov")
        full = direct_sum(idx, q, kern, 1.0)
        tiny = direct_sum(idx, q, kern, 1.0, slab_pairs=64)
        np.testing.assert_array_equal(full, tiny)

    def test_multi_segment_index(self, small_grid):
        """Cohort gather spans segments exactly like the group walk."""
        pts = make_clustered_points(small_grid, 150, seed=79)
        idx = BucketIndex(small_grid)
        for i, (s, e) in enumerate([(0, 50), (50, 120), (120, 150)]):
            idx.add_segment(i, pts.coords[s:e])
        rng = np.random.default_rng(80)
        d = small_grid.domain
        q = rng.uniform([d.x0, d.y0, d.t0],
                        [d.x0 + d.gx, d.y0 + d.gy, d.t0 + d.gt],
                        size=(150, 3))
        self._check(idx, q)
        # And the segmented sums equal the monolithic index to fp slack.
        mono = direct_sum(
            BucketIndex(small_grid, pts.coords), q,
            get_kernel("epanechnikov"), 1.0,
        )
        seg = direct_sum(idx, q, get_kernel("epanechnikov"), 1.0)
        np.testing.assert_allclose(seg, mono, rtol=1e-12, atol=1e-18)

    def test_empty_index_and_empty_batch(self, small_grid):
        idx = BucketIndex(small_grid)
        out = direct_sum(idx, np.array([[1.0, 1.0, 1.0]]),
                         get_kernel("epanechnikov"), 1.0)
        np.testing.assert_array_equal(out, [0.0])
        assert direct_sum(idx, np.empty((0, 3)),
                          get_kernel("epanechnikov"), 1.0).shape == (0,)


class TestSampleVolume:
    def test_exact_at_voxel_centers(self, small_grid):
        pts = make_clustered_points(small_grid, 70, seed=25)
        ref = pb_sym(pts, small_grid)
        q, vox = voxel_center_queries(small_grid, stride=2)
        out = sample_volume(ref.data, small_grid, q)
        np.testing.assert_array_equal(
            out, ref.data[vox[:, 0], vox[:, 1], vox[:, 2]]
        )

    def test_interpolates_linear_fields_exactly(self, small_grid):
        """Trilinear interpolation reproduces any affine field between
        centers — the standard correctness probe."""
        g = small_grid
        xc, yc, tc = g.x_centers(), g.y_centers(), g.t_centers()
        data = (2.0 * xc[:, None, None] - 0.5 * yc[None, :, None]
                + 3.0 * tc[None, None, :] + 1.0)
        rng = np.random.default_rng(26)
        # Stay inside the center lattice where trilinear is affine-exact.
        q = np.column_stack([
            rng.uniform(xc[0], xc[-1], 30),
            rng.uniform(yc[0], yc[-1], 30),
            rng.uniform(tc[0], tc[-1], 30),
        ])
        out = sample_volume(data, g, q)
        expect = 2.0 * q[:, 0] - 0.5 * q[:, 1] + 3.0 * q[:, 2] + 1.0
        np.testing.assert_allclose(out, expect, rtol=1e-12)

    def test_clamps_outside_domain(self, small_grid):
        data = np.full(small_grid.shape, 7.0)
        far = np.array([[1e6, -1e6, 1e6]])
        np.testing.assert_allclose(
            sample_volume(data, small_grid, far), [7.0]
        )

    def test_single_voxel_axis(self):
        from repro.core import DomainSpec, GridSpec

        g = GridSpec(DomainSpec.from_voxels(4, 4, 1), hs=1.0, ht=2.0)
        data = np.ones(g.shape)
        out = sample_volume(data, g, np.array([[2.0, 2.0, 0.5]]))
        np.testing.assert_allclose(out, [1.0])


class TestRegions:
    def test_direct_region_matches_full_stamp(self, small_grid):
        pts = make_clustered_points(small_grid, 90, seed=27)
        ref = pb_sym(pts, small_grid)
        win = VoxelWindow(2, 9, 3, 11, 4, 12)
        res = direct_region(
            small_grid, get_kernel("epanechnikov"), pts.coords, win,
            small_grid.normalization(pts.n),
        )
        np.testing.assert_allclose(
            res.data, ref.data[win.slices()], rtol=1e-6, atol=1e-18
        )
        assert res.backend == "direct"
        assert res.window == win
        assert not res.data.flags.writeable

    def test_region_view_is_zero_copy(self, small_grid):
        data = np.arange(small_grid.n_voxels, dtype=np.float64).reshape(
            small_grid.shape
        )
        win = VoxelWindow(1, 5, 2, 6, 3, 7)
        res = region_view(data, win)
        assert res.is_view
        assert np.shares_memory(res.data, data)
        assert not res.data.flags.writeable
        np.testing.assert_array_equal(res.data, data[win.slices()])

    def test_slice_window_shape_and_bounds(self, small_grid):
        win = slice_window(small_grid, 3)
        assert win.shape == (small_grid.Gx, small_grid.Gy, 1)
        with pytest.raises(ValueError, match="slice"):
            slice_window(small_grid, small_grid.Gt)
        with pytest.raises(ValueError, match="slice"):
            slice_window(small_grid, -1)

    def test_direct_region_rejects_empty(self, small_grid):
        with pytest.raises(ValueError, match="empty"):
            direct_region(
                small_grid, get_kernel("epanechnikov"),
                np.empty((0, 3)), VoxelWindow(3, 3, 0, 2, 0, 2), 1.0,
            )

    def test_time_slice_accessor(self, small_grid):
        pts = make_points(small_grid, 40, seed=28)
        win = slice_window(small_grid, 5)
        res = direct_region(
            small_grid, get_kernel("epanechnikov"), pts.coords, win,
            small_grid.normalization(pts.n),
        )
        assert res.time_slice().shape == (small_grid.Gx, small_grid.Gy)


class TestSkewedCohortFallback:
    """Satellite acceptance: a cohort with one huge candidate set and few
    queries takes the sparse per-query path, bit-identical to the dense
    block gather."""

    def _skewed_index(self, small_grid, n_cluster=400, seed=90):
        rng = np.random.default_rng(seed)
        d = small_grid.domain
        center = np.array([
            d.x0 + 1.5 * small_grid.hs,
            d.y0 + 1.5 * small_grid.hs,
            d.t0 + 1.5 * small_grid.ht,
        ])
        cluster = center + rng.normal(0, 0.3, size=(n_cluster, 3)) * np.array(
            [small_grid.hs, small_grid.hs, small_grid.ht]
        )
        sparse = make_points(small_grid, 40, seed=seed + 1).coords
        coords = np.clip(
            np.vstack([cluster, sparse]),
            [d.x0, d.y0, d.t0],
            [d.x0 + d.gx * (1 - 1e-9), d.y0 + d.gy * (1 - 1e-9),
             d.t0 + d.gt * (1 - 1e-9)],
        )
        return BucketIndex(small_grid, coords), coords, center

    def test_fallback_is_bit_identical(self, small_grid):
        idx, coords, center = self._skewed_index(small_grid)
        rng = np.random.default_rng(91)
        d = small_grid.domain
        q = np.vstack([
            center[None, :],  # one query in the huge-K cluster cell
            rng.uniform([d.x0, d.y0, d.t0],
                        [d.x0 + d.gx, d.y0 + d.gy, d.t0 + d.gt],
                        size=(60, 3)),
        ])
        kern = get_kernel("epanechnikov")
        dense = direct_sum(idx, q, kern, 1.0, skew_min_k=10**9)
        sparse = direct_sum(idx, q, kern, 1.0, skew_min_k=64)
        np.testing.assert_array_equal(dense, sparse)
        np.testing.assert_allclose(
            sparse, direct_sum_grouped(idx, q, kern, 1.0),
            rtol=1e-12, atol=0.0,
        )

    def test_fallback_weighted_bit_identical(self, small_grid):
        idx, coords, center = self._skewed_index(small_grid, seed=95)
        w = np.linspace(0.25, 3.0, coords.shape[0])
        widx = BucketIndex(small_grid, coords, w)
        kern = get_kernel("epanechnikov")
        q = center[None, :] + np.linspace(-0.2, 0.2, 5)[:, None]
        np.testing.assert_array_equal(
            direct_sum(widx, q, kern, 1.0, skew_min_k=10**9),
            direct_sum(widx, q, kern, 1.0, skew_min_k=64),
        )

    def test_many_queries_keep_the_dense_path(self, small_grid):
        """A huge-K cohort serving many queries is not skewed: the dense
        block amortises, and both shapes agree anyway."""
        idx, coords, center = self._skewed_index(small_grid, seed=97)
        rng = np.random.default_rng(98)
        q = center[None, :] + rng.normal(0, 0.2, size=(64, 3))
        kern = get_kernel("epanechnikov")
        np.testing.assert_array_equal(
            direct_sum(idx, q, kern, 1.0, skew_min_k=10**9),
            direct_sum(idx, q, kern, 1.0, skew_min_k=64),
        )

    def test_multi_segment_fallback(self, small_grid):
        idx_src, coords, center = self._skewed_index(small_grid, seed=99)
        idx = BucketIndex(small_grid)
        third = len(coords) // 3
        for i, (s, e) in enumerate(
            [(0, third), (third, 2 * third), (2 * third, len(coords))]
        ):
            idx.add_segment(i, coords[s:e])
        kern = get_kernel("epanechnikov")
        q = center[None, :]
        np.testing.assert_array_equal(
            direct_sum(idx, q, kern, 1.0, skew_min_k=10**9),
            direct_sum(idx, q, kern, 1.0, skew_min_k=64),
        )
