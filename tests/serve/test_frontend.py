"""Tests for the asyncio traffic front end.

Covers the coalescer (batching, eps/seed isolation), the priority
lanes (bulk chunking, mutation ordering), admission control
(``Overloaded`` shedding, defer mode), and the failure paths the
subsystem must survive: request cancellation mid-flush, saturating
closed loops, flush-vs-slide version ordering, and clean shutdown with
in-flight requests.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core import DomainSpec, GridSpec, PointSet
from repro.core.incremental import IncrementalSTKDE
from repro.serve import DensityService, Overloaded, TrafficFrontend


def _grid():
    return GridSpec(DomainSpec.from_voxels(20, 20, 30), hs=2.5, ht=2.0)


def _points(grid, n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.uniform(
        0, [grid.domain.gx, grid.domain.gy, grid.domain.gt], size=(n, 3)
    )


def _static_service(grid, n=1500, seed=0, **kw):
    return DensityService(PointSet(_points(grid, n, seed)), grid, **kw)


def run(coro):
    return asyncio.run(coro)


class TestCoalescing:
    def test_concurrent_points_coalesce_into_batches(self):
        grid = _grid()
        # Pin the direct backend: the planner may otherwise route the
        # coalesced batches and the reference batch to different exact
        # backends, whose answers legitimately differ off voxel centers.
        svc = _static_service(grid, backend="direct")
        qs = _points(grid, 120, seed=1)

        async def main():
            async with TrafficFrontend(svc, max_batch=64) as fe:
                outs = await asyncio.gather(
                    *[fe.query_point(*q) for q in qs]
                )
                blob = fe.frontend_stats()
            return np.array(outs), blob

        outs, blob = run(main())
        assert blob["coalesced_requests"] == 120
        # Batch-while-busy: far fewer dispatches than requests.
        assert blob["batches"] < 60
        assert blob["mean_batch_rows"] > 1.5
        # Answers are the service's own (direct backend pinned for a
        # backend-independent comparison is unnecessary: same service,
        # same version, cohort batch answers are the reference).
        ref = svc.query_points(qs)
        np.testing.assert_allclose(outs, ref, rtol=1e-9, atol=1e-12)

    def test_per_request_mode_dispatches_each(self):
        grid = _grid()
        svc = _static_service(grid)
        qs = _points(grid, 20, seed=2)

        async def main():
            async with TrafficFrontend(svc, max_batch=1) as fe:
                await asyncio.gather(*[fe.query_point(*q) for q in qs])
                return fe.frontend_stats()

        blob = run(main())
        assert blob["batches"] >= 20
        assert blob["mean_batch_rows"] == 1.0

    def test_eps_and_exact_never_share_a_batch(self):
        grid = _grid()
        svc = _static_service(grid)
        qs = _points(grid, 40, seed=3)

        async def main():
            async with TrafficFrontend(svc, max_delay_ms=50.0) as fe:
                exact = [fe.query_point(*q) for q in qs[:20]]
                approx = [
                    fe.query_point(*q, eps=0.3, seed=7) for q in qs[20:]
                ]
                outs = await asyncio.gather(*exact, *approx)
                hist = fe.frontend_stats()["batch_rows_hist"]
            return outs, hist

        outs, hist = run(main())
        # Batches of mixed policy would exceed 20 rows somewhere.
        assert all(rows <= 20 for rows in hist)
        assert all(np.isfinite(outs))

    def test_multi_row_requests_coalesce_too(self):
        grid = _grid()
        svc = _static_service(grid)
        qs = _points(grid, 30, seed=4)

        async def main():
            async with TrafficFrontend(svc) as fe:
                a, b, c = await asyncio.gather(
                    fe.query_points(qs[:10]),
                    fe.query_points(qs[10:25]),
                    fe.query_points(qs[25:]),
                )
            return np.concatenate([a, b, c])

        outs = run(main())
        ref = svc.query_points(qs)
        np.testing.assert_allclose(outs, ref, rtol=1e-9, atol=1e-12)

    def test_rejects_bad_shapes_and_unstarted_use(self):
        grid = _grid()
        svc = _static_service(grid)
        fe = TrafficFrontend(svc)
        with pytest.raises(RuntimeError, match="start"):
            run(fe.query_point(1.0, 1.0, 1.0))

        async def bad_shape():
            async with TrafficFrontend(svc) as fe2:
                await fe2.query_points(np.zeros((3, 2)))

        with pytest.raises(ValueError, match="expected"):
            run(bad_shape())


class TestRegionsAndLanes:
    def test_region_stitched_from_quanta_matches_service(self):
        grid = _grid()
        svc = _static_service(grid)

        async def main():
            async with TrafficFrontend(
                svc, bulk_quantum_seconds=1e-5
            ) as fe:
                res = await fe.query_region((0, 20, 0, 20, 0, 30))
                blob = fe.frontend_stats()
            return res, blob

        res, blob = run(main())
        # fp-level: chunked direct stamps group cohorts differently than
        # one monolithic extract, so sums associate in a different order.
        ref = svc.query_region((0, 20, 0, 20, 0, 30))
        np.testing.assert_allclose(res.data, ref.data,
                                   rtol=1e-12, atol=1e-16)
        assert res.window == ref.window
        # The tiny quantum forced multiple sub-dispatches.
        assert blob["batches"] > 1
        assert not res.data.flags.writeable

    def test_point_queries_interleave_a_chunked_region(self):
        """Anti-head-of-line-blocking: point batches dispatch between a
        big region's quanta rather than after all of them."""
        grid = _grid()
        svc = _static_service(grid, n=4000)
        qs = _points(grid, 30, seed=5)
        order: list = []

        real_points = svc.query_points
        real_region = svc.query_region

        def spy_points(*a, **k):
            order.append("points")
            return real_points(*a, **k)

        def spy_region(*a, **k):
            order.append("region")
            return real_region(*a, **k)

        svc.query_points = spy_points
        svc.query_region = spy_region

        async def main():
            async with TrafficFrontend(
                svc, bulk_quantum_seconds=1e-5, max_delay_ms=1.0
            ) as fe:
                region = asyncio.ensure_future(
                    fe.query_region((0, 20, 0, 20, 0, 30))
                )
                await asyncio.sleep(0)  # region enters the bulk lane
                pts = [fe.query_point(*q) for q in qs]
                await asyncio.gather(region, *pts)

        run(main())
        first_point = order.index("points")
        last_region = len(order) - 1 - order[::-1].index("region")
        assert first_point < last_region, order

    def test_slice_equals_service_slice(self):
        grid = _grid()
        svc = _static_service(grid)

        async def main():
            async with TrafficFrontend(svc) as fe:
                return await fe.query_slice(4)

        res = run(main())
        ref = svc.query_slice(4)
        np.testing.assert_array_equal(res.data, ref.data)


class TestMutations:
    def _live(self, grid):
        inc = IncrementalSTKDE(grid)
        inc.add(_points(grid, 400, seed=6))
        return inc, DensityService(inc, backend="direct")

    def test_slide_then_query_sees_new_version(self):
        grid = _grid()
        inc, svc = self._live(grid)
        fresh = _points(grid, 50, seed=7)
        probe = _points(grid, 5, seed=8)

        async def main():
            async with TrafficFrontend(svc) as fe:
                v0 = inc.version
                await fe.slide_window(fresh, t_horizon=0.0)
                assert inc.version > v0
                out = await fe.query_points(probe)
            return out

        out = run(main())
        np.testing.assert_allclose(
            out, svc.query_points(probe), rtol=1e-12, atol=1e-18
        )

    def test_mutations_drain_in_version_order(self):
        grid = _grid()
        inc, svc = self._live(grid)
        batches = [_points(grid, 20, seed=10 + i) for i in range(4)]

        async def main():
            async with TrafficFrontend(svc) as fe:
                versions = await asyncio.gather(*[
                    fe.mutate(
                        lambda b=b: (inc.slide_window(b, 0.0), inc.version)[1]
                    )
                    for b in batches
                ])
            return versions

        versions = run(main())
        assert versions == sorted(versions)

    def test_flush_vs_slide_no_torn_version(self):
        """Queries racing a stream of slides always see a fully-applied
        version: every answer equals a same-version reference."""
        grid = _grid()
        inc, svc = self._live(grid)
        probe = _points(grid, 8, seed=11)

        async def main():
            async with TrafficFrontend(svc) as fe:
                async def feeder():
                    for i in range(5):
                        await fe.slide_window(
                            _points(grid, 30, seed=20 + i), t_horizon=0.0
                        )

                async def prober():
                    outs = []
                    for _ in range(10):
                        out = await fe.query_points(probe)
                        # Immediately re-ask the service directly: a torn
                        # version would disagree with its own re-answer.
                        outs.append(out)
                        await asyncio.sleep(0)
                    return outs

                _, outs = await asyncio.gather(feeder(), prober())
            return outs

        outs = run(main())
        assert all(np.isfinite(o).all() for o in outs)

    def test_static_service_has_no_slide_target(self):
        grid = _grid()
        svc = _static_service(grid)

        async def main():
            async with TrafficFrontend(svc) as fe:
                with pytest.raises(RuntimeError, match="live source"):
                    await fe.slide_window(np.empty((0, 3)), 0.0)

        run(main())


class TestAdmissionControl:
    def test_saturating_closed_loop_sheds_with_overloaded(self):
        grid = _grid()
        svc = _static_service(grid, n=4000)
        qs = _points(grid, 400, seed=12)

        async def main():
            async with TrafficFrontend(
                svc, max_pending_seconds=1e-4, max_batch=8
            ) as fe:
                results = await asyncio.gather(
                    *[fe.query_point(*q) for q in qs],
                    return_exceptions=True,
                )
                blob = fe.frontend_stats()
            return results, blob

        results, blob = run(main())
        shed = [r for r in results if isinstance(r, Overloaded)]
        served = [r for r in results if isinstance(r, float)]
        assert shed, "saturation never shed"
        assert served, "admission shed everything"
        assert blob["shed"] == len(shed)
        err = shed[0]
        assert err.pending_seconds + err.est_seconds > err.budget_seconds
        assert "admission budget" in str(err)

    def test_defer_mode_serves_everything_eventually(self):
        grid = _grid()
        svc = _static_service(grid)
        qs = _points(grid, 60, seed=13)

        async def main():
            async with TrafficFrontend(
                svc, max_pending_seconds=1e-4, max_batch=8,
                overload="defer",
            ) as fe:
                outs = await asyncio.gather(
                    *[fe.query_point(*q) for q in qs]
                )
                blob = fe.frontend_stats()
            return outs, blob

        outs, blob = run(main())
        assert blob["shed"] == 0
        assert len(outs) == 60 and all(np.isfinite(outs))

    def test_invalid_overload_mode_rejected(self):
        grid = _grid()
        with pytest.raises(ValueError, match="overload"):
            TrafficFrontend(_static_service(grid), overload="drop")


class TestFailurePaths:
    def test_cancellation_mid_flush_drops_only_the_canceller(self):
        """A caller timing out mid-hold abandons its future; co-batched
        requests still get answers and the dispatcher survives."""
        grid = _grid()
        svc = _static_service(grid)
        qs = _points(grid, 10, seed=14)

        async def main():
            async with TrafficFrontend(svc, max_delay_ms=40.0) as fe:
                doomed = asyncio.ensure_future(
                    asyncio.wait_for(
                        fe.query_point(*qs[0]), timeout=0.001
                    )
                )
                rest = [fe.query_point(*q) for q in qs[1:]]
                results = await asyncio.gather(
                    doomed, *rest, return_exceptions=True
                )
            return results

        results = run(main())
        assert isinstance(results[0], asyncio.TimeoutError)
        assert all(isinstance(r, float) for r in results[1:])

    def test_service_exception_routed_to_all_waiters(self):
        grid = _grid()
        svc = _static_service(grid)

        def boom(*a, **k):
            raise RuntimeError("engine exploded")

        svc.query_points = boom

        async def main():
            async with TrafficFrontend(svc) as fe:
                results = await asyncio.gather(
                    fe.query_point(1.0, 1.0, 1.0),
                    fe.query_point(2.0, 2.0, 2.0),
                    return_exceptions=True,
                )
            return results

        results = run(main())
        assert all(
            isinstance(r, RuntimeError) and "exploded" in str(r)
            for r in results
        )

    def test_clean_shutdown_drains_in_flight_requests(self):
        """aclose() with work still queued resolves every admitted
        future — no orphans."""
        grid = _grid()
        svc = _static_service(grid)
        qs = _points(grid, 40, seed=15)

        async def main():
            fe = await TrafficFrontend(svc, max_delay_ms=100.0).start()
            futs = [
                asyncio.ensure_future(fe.query_point(*q)) for q in qs
            ]
            await asyncio.sleep(0)  # requests enter the coalescer
            await fe.aclose(drain=True)
            assert all(f.done() for f in futs)
            return await asyncio.gather(*futs)

        outs = run(main())
        assert len(outs) == 40 and all(np.isfinite(outs))

    def test_abort_shutdown_cancels_pending(self):
        grid = _grid()
        svc = _static_service(grid)
        qs = _points(grid, 20, seed=16)

        async def main():
            fe = await TrafficFrontend(svc, max_delay_ms=200.0).start()
            futs = [
                asyncio.ensure_future(fe.query_point(*q)) for q in qs
            ]
            await asyncio.sleep(0)
            await fe.aclose(drain=False)
            results = await asyncio.gather(*futs, return_exceptions=True)
            return results

        results = run(main())
        assert all(
            isinstance(r, asyncio.CancelledError) or isinstance(r, float)
            for r in results
        )
        assert any(isinstance(r, asyncio.CancelledError) for r in results)

    def test_closed_frontend_rejects_new_work(self):
        grid = _grid()
        svc = _static_service(grid)

        async def main():
            fe = await TrafficFrontend(svc).start()
            await fe.aclose()
            with pytest.raises(RuntimeError, match="closed"):
                await fe.query_point(1.0, 1.0, 1.0)

        run(main())


class TestStats:
    def test_stats_merges_frontend_blob_into_service_stats(self):
        grid = _grid()
        svc = _static_service(grid)
        qs = _points(grid, 25, seed=17)

        async def main():
            async with TrafficFrontend(svc) as fe:
                await asyncio.gather(*[fe.query_point(*q) for q in qs])
                await fe.query_slice(2)
                return await fe.stats()

        st = run(main())
        assert "version" in st and "cache" in st  # service keys intact
        fb = st["frontend"]
        assert set(fb["lanes"]) == {"interactive", "bulk", "mutation"}
        assert fb["coalesced_requests"] == 25
        assert fb["batches"] >= 1
        assert fb["latency"]["count"] == 25
        assert fb["latency"]["p99_ms"] >= fb["latency"]["p50_ms"] >= 0.0
        assert fb["pending_cost_seconds"] == pytest.approx(0.0, abs=1e-9)
        assert fb["shed"] == 0
