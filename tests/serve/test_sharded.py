"""Sharded serving tier: partition exactness, routing, faults, planning.

The tentpole equivalence claim is pinned at ``rtol=1e-12``: the shard
partition is *disjoint event ownership*, so the gathered per-shard
partial sums re-associate (never re-weight) the single-process
estimator — on point, slice and region queries, for weighted static
snapshots, and across live ``add``/``remove``/``slide_window`` feeds.

Worker processes use the spawn start method; the grids here are tiny so
each pool costs fractions of a second to stand up.  Fault-path tests
exercise the contract that a dying worker surfaces a clear coordinator
error (never a hang) and that ``close()``/context exit always reap the
pool.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.analysis.model import CostModel, MachineModel
from repro.core import DomainSpec, GridSpec, PointSet
from repro.core.incremental import IncrementalSTKDE
from repro.serve import (
    DensityService,
    QueryPlanner,
    ShardPlan,
    ShardedDensityService,
    calibrate_ipc,
    plan_shards,
)

RTOL = 1e-12
ATOL = 1e-300  # densities are nonnegative; 0-vs-0 must compare equal


def make_grid(vox=(40, 32, 24), hs=4.0, ht=3.0) -> GridSpec:
    return GridSpec(DomainSpec.from_voxels(*vox), hs=hs, ht=ht)


def span_of(grid: GridSpec) -> np.ndarray:
    d = grid.domain
    return np.array([d.gx, d.gy, d.gt])


NOMINAL = MachineModel.nominal()


# ---------------------------------------------------------------------------
# ShardPlan geometry (no processes)
# ---------------------------------------------------------------------------
class TestShardPlan:
    def test_partition_is_a_permutation(self):
        grid = make_grid()
        rng = np.random.default_rng(0)
        coords = rng.uniform(0, span_of(grid), size=(500, 3))
        plan = plan_shards(grid, coords, 4)
        parts = plan.partition(coords)
        assert len(parts) == plan.n_shards == 4
        joined = np.concatenate(parts)
        assert np.array_equal(np.sort(joined), np.arange(500))

    def test_owner_matches_cut_intervals(self):
        grid = make_grid()
        plan = ShardPlan(grid, np.array([10.0, 20.0]))
        xs = np.array([0.0, 9.999, 10.0, 15.0, 20.0, 39.0])
        assert plan.owner_of(xs).tolist() == [0, 0, 1, 1, 2, 2]

    def test_scatter_span_always_contains_the_owner(self):
        grid = make_grid()
        rng = np.random.default_rng(1)
        coords = rng.uniform(0, span_of(grid), size=(300, 3))
        plan = plan_shards(grid, coords, 5)
        xs = rng.uniform(-2, span_of(grid)[0] + 2, size=200)
        lo, hi = plan.scatter_spans(xs)
        owner = plan.owner_of(np.clip(xs, 0, span_of(grid)[0]))
        assert np.all(lo <= owner) and np.all(owner <= hi)
        assert np.all(hi >= lo)

    def test_halo_defaults_to_bandwidth_and_widens_spans(self):
        grid = make_grid(hs=4.0)
        plan = ShardPlan(grid, np.array([20.0]))
        assert plan.halo == pytest.approx(4.0)
        # Within one halo of the cut: both shards are contacted.
        lo, hi = plan.scatter_spans(np.array([17.0, 23.9, 5.0, 35.0]))
        assert (hi - lo).tolist() == [1, 1, 0, 0]

    def test_shards_for_window_covers_reaching_events(self):
        grid = make_grid(hs=4.0)
        plan = ShardPlan(grid, np.array([20.0]))
        # Window ends at x-voxel 18 (domain x=18): events beyond the cut
        # at 20 still reach it through the 4-unit kernel support.
        from repro.core.grid import VoxelWindow

        w = VoxelWindow(10, 18, 0, 8, 0, 4)
        assert plan.shards_for_window(w).tolist() == [0, 1]
        w_far = VoxelWindow(0, 10, 0, 8, 0, 4)
        assert plan.shards_for_window(w_far).tolist() == [0]

    def test_decreasing_cuts_rejected(self):
        grid = make_grid()
        with pytest.raises(ValueError, match="nondecreasing"):
            ShardPlan(grid, np.array([20.0, 10.0]))


# ---------------------------------------------------------------------------
# Static equivalence (the rtol=1e-12 tentpole claim)
# ---------------------------------------------------------------------------
class TestStaticEquivalence:
    @pytest.fixture(scope="class")
    def setup(self):
        grid = make_grid()
        rng = np.random.default_rng(7)
        pts = PointSet(rng.uniform(0, span_of(grid), size=(800, 3)))
        q = rng.uniform(-2, span_of(grid) + 2, size=(200, 3))
        ref = DensityService(pts, grid, machine=NOMINAL)
        with ShardedDensityService(
            pts, grid, workers=3, machine=NOMINAL
        ) as svc:
            yield grid, pts, q, ref, svc

    def test_point_queries_match(self, setup):
        _, _, q, ref, svc = setup
        got = svc.query_points(q, backend="sharded")
        want = ref.query_points(q, backend="direct")
        np.testing.assert_allclose(got, want, rtol=RTOL, atol=ATOL)

    def test_region_and_slice_match(self, setup):
        grid, _, _, ref, svc = setup
        w = (5, 30, 0, 32, 3, 9)
        got = svc.query_region(w, backend="sharded")
        want = ref.query_region(w, backend="direct")
        np.testing.assert_allclose(got.data, want.data, rtol=RTOL, atol=ATOL)
        sl = svc.query_slice(4)
        sl_ref = ref.query_slice(4, backend="direct")
        np.testing.assert_allclose(sl.data, sl_ref.data, rtol=RTOL, atol=ATOL)

    def test_local_fallback_matches_sharded(self, setup):
        _, _, q, _, svc = setup
        np.testing.assert_allclose(
            svc.query_points(q, backend="local"),
            svc.query_points(q, backend="sharded"),
            rtol=RTOL, atol=ATOL,
        )

    def test_stats_merge_per_worker_gauges(self, setup):
        _, pts, q, _, svc = setup
        svc.query_points(q, backend="sharded")
        st = svc.stats()
        assert st["n_shards"] == 3
        assert st["events"] == pts.coords.shape[0]
        assert len(st["workers"]) == 3
        assert sum(w["events"] for w in st["workers"]) == pts.coords.shape[0]
        # Worker-side work counters reached the merged view.
        assert st["work"]["distance_tests"] > 0
        assert st["work"]["shard_messages"] > 0
        assert st["work"]["shard_rows_shipped"] > 0

    def test_weighted_static_matches(self):
        grid = make_grid()
        rng = np.random.default_rng(8)
        coords = rng.uniform(0, span_of(grid), size=(400, 3))
        pts = PointSet(coords, rng.uniform(0.5, 3.0, size=400))
        q = rng.uniform(0, span_of(grid), size=(120, 3))
        ref = DensityService(pts, grid, machine=NOMINAL)
        with ShardedDensityService(
            pts, grid, workers=2, machine=NOMINAL
        ) as svc:
            np.testing.assert_allclose(
                svc.query_points(q, backend="sharded"),
                ref.query_points(q, backend="direct"),
                rtol=RTOL, atol=ATOL,
            )


# ---------------------------------------------------------------------------
# Live feeds: add / remove / slide_window + O(affected shards) routing
# ---------------------------------------------------------------------------
class TestLiveEquivalence:
    def test_add_remove_slide_match_single_process(self):
        grid = make_grid()
        rng = np.random.default_rng(11)
        span = span_of(grid)
        q = rng.uniform(-1, span + 1, size=(150, 3))
        inc = IncrementalSTKDE(grid)
        ref = DensityService(inc, machine=NOMINAL)

        def check(svc):
            np.testing.assert_allclose(
                svc.query_points(q),
                ref.query_points(q, backend="direct"),
                rtol=RTOL, atol=ATOL,
            )

        with ShardedDensityService(
            None, grid, workers=3, machine=NOMINAL
        ) as svc:
            b1 = rng.uniform(0, span, size=(300, 3))
            b1[:, 2] *= 0.3
            inc.add(b1)
            svc.add(b1)
            check(svc)
            inc.remove(b1[:20])
            svc.remove(b1[:20])
            check(svc)
            for k in range(2):
                newb = rng.uniform(0, span, size=(200, 3))
                newb[:, 2] = (
                    grid.domain.gt * (0.4 + 0.2 * k)
                    + rng.uniform(0, 3, 200)
                )
                horizon = grid.domain.t0 + 6.0 * (k + 1)
                assert inc.slide_window(newb, horizon) == svc.slide_window(
                    newb, horizon
                )
                check(svc)
                w = (0, 40, 0, 32, 6, 16)
                np.testing.assert_allclose(
                    svc.query_region(w).data,
                    ref.query_region(w, backend="direct").data,
                    rtol=RTOL, atol=ATOL,
                )

    def test_slide_contacts_only_affected_shards(self):
        grid = make_grid()
        rng = np.random.default_rng(13)
        span = span_of(grid)
        with ShardedDensityService(
            None, grid, workers=3, machine=NOMINAL
        ) as svc:
            seed = rng.uniform(0, span, size=(240, 3))
            seed[:, 2] = grid.domain.t0 + rng.uniform(5, 20, size=240)
            svc.add(seed)
            cuts = svc.plan.cuts
            before = svc.counter.shard_messages
            # Arrivals strictly inside shard 0; horizon below every live
            # event: only shard 0 has anything to do.
            x_hi = max(cuts[0] - grid.domain.x0 - 1e-6, 1e-3)
            narrow = np.column_stack([
                grid.domain.x0 + rng.uniform(0, x_hi, 30),
                rng.uniform(0, span[1], 30),
                np.full(30, grid.domain.t0 + grid.domain.gt * 0.9),
            ])
            svc.slide_window(narrow, grid.domain.t0 + 1.0)
            assert svc.counter.shard_messages - before == 1

    def test_live_rejects_local_backend_and_weighted_mutations(self):
        grid = make_grid((16, 12, 8))
        with ShardedDensityService(
            None, grid, workers=2, machine=NOMINAL
        ) as svc:
            svc.add(np.array([[1.0, 1.0, 1.0]]))
            with pytest.raises(ValueError, match="live sources"):
                svc.query_points(np.zeros((1, 3)), backend="local")
            weighted = PointSet(
                np.array([[1.0, 1.0, 1.0]]), np.array([2.0])
            )
            with pytest.raises(ValueError, match="weight"):
                svc.add(weighted)


# ---------------------------------------------------------------------------
# Fault paths: dying workers must recover (or surface typed), never hang
# ---------------------------------------------------------------------------
class TestFaultPaths:
    def test_worker_death_mid_request_recovers(self):
        """A crash mid-query is absorbed: the supervisor respawns the
        worker, replays its state, and the query answer is unchanged."""
        grid = make_grid((24, 24, 12))
        rng = np.random.default_rng(3)
        pts = PointSet(rng.uniform(0, span_of(grid), size=(100, 3)))
        queries = rng.uniform(0, span_of(grid), size=(50, 3))
        svc = ShardedDensityService(pts, grid, workers=2, machine=NOMINAL)
        try:
            expect = svc.query_points(queries, backend="sharded")
            svc._workers[1].send_op("crash")
            t0 = time.perf_counter()
            out = svc.query_points(queries, backend="sharded")
            assert time.perf_counter() - t0 < 15.0  # recovered, not hung
            np.testing.assert_allclose(out, expect, rtol=RTOL, atol=ATOL)
            assert svc.counter.shard_restarts == 1
            assert svc.counter.requests_retried == 1
        finally:
            svc.close()
        svc.close()  # idempotent after a fault

    def test_worker_death_without_budget_raises_typed(self):
        """With a zero restart budget the old fail-fast contract holds,
        now as a typed ShardFailed naming the shard and op."""
        from repro.serve import ShardFailed

        grid = make_grid((24, 24, 12))
        rng = np.random.default_rng(3)
        pts = PointSet(rng.uniform(0, span_of(grid), size=(100, 3)))
        svc = ShardedDensityService(
            pts, grid, workers=2, machine=NOMINAL, max_restarts=0
        )
        try:
            svc._workers[1].send_op("crash")
            t0 = time.perf_counter()
            with pytest.raises(ShardFailed, match="shard worker 1"):
                svc.query_points(
                    rng.uniform(0, span_of(grid), size=(50, 3)),
                    backend="sharded",
                )
            assert time.perf_counter() - t0 < 5.0  # surfaced, not hung
        finally:
            svc.close()
        svc.close()  # idempotent after a fault

    def test_context_exit_reaps_the_pool(self):
        grid = make_grid((24, 24, 12))
        rng = np.random.default_rng(4)
        pts = PointSet(rng.uniform(0, span_of(grid), size=(60, 3)))
        with ShardedDensityService(
            pts, grid, workers=2, machine=NOMINAL
        ) as svc:
            procs = [w._proc for w in svc._workers]
            assert all(p.is_alive() for p in procs)
        assert all(not p.is_alive() for p in procs)

    def test_queries_after_close_fail_cleanly(self):
        grid = make_grid((24, 24, 12))
        pts = PointSet(np.array([[1.0, 1.0, 1.0]]))
        svc = ShardedDensityService(pts, grid, workers=2, machine=NOMINAL)
        svc.close()
        with pytest.raises(RuntimeError, match="closed"):
            svc.query_points(np.zeros((1, 3)), backend="sharded")


# ---------------------------------------------------------------------------
# Scatter/gather planning + IPC calibration
# ---------------------------------------------------------------------------
class TestScatterPlanning:
    @pytest.fixture()
    def planner(self, small_grid):
        machine = MachineModel.nominal()
        model = CostModel(
            small_grid, PointSet(np.empty((0, 3))), machine
        )
        return QueryPlanner(model)

    def test_small_batch_goes_local(self, planner):
        plan = planner.plan_scatter(
            4, est_candidates=40, n_shards=4, fanout_rows=5
        )
        assert plan.backend == "local"
        assert plan.local_seconds <= plan.sharded_seconds

    def test_large_batch_goes_sharded(self, planner):
        plan = planner.plan_scatter(
            1_000_000, est_candidates=5_000_000_000, n_shards=4,
            fanout_rows=1_100_000,
        )
        assert plan.backend == "sharded"
        assert plan.sharded_seconds <= plan.local_seconds
        assert plan.speedup >= 1.0

    def test_force_overrides_but_records_both_prices(self, planner):
        plan = planner.plan_scatter(
            4, est_candidates=40, n_shards=4, fanout_rows=5,
            force="sharded", force_reason="live source serves sharded",
        )
        assert plan.backend == "sharded"
        assert plan.reason == "live source serves sharded"
        assert plan.local_seconds > 0 and plan.sharded_seconds > 0
        with pytest.raises(ValueError, match="backend"):
            planner.plan_scatter(
                4, est_candidates=40, n_shards=4, fanout_rows=5,
                force="bogus",
            )

    def test_prediction_decomposes_into_ipc_plus_compute(self, small_grid):
        model = CostModel(
            small_grid, PointSet(np.empty((0, 3))), MachineModel.nominal()
        )
        pred = model.predict_scatter_gather(
            1000, total_candidates=100_000, n_shards=4, fanout_rows=1200
        )
        assert pred.n_shards == 4
        assert pred.seconds == pytest.approx(
            pred.ipc_seconds + pred.compute_seconds
        )
        # More shards -> strictly more message cost.
        pred8 = model.predict_scatter_gather(
            1000, total_candidates=100_000, n_shards=8, fanout_rows=1200
        )
        assert pred8.ipc_seconds > pred.ipc_seconds

    def test_calibrate_ipc_measures_positive_rates(self):
        machine = calibrate_ipc(MachineModel.nominal())
        assert machine.c_msg > 0.0
        assert machine.c_qser > 0.0


# ---------------------------------------------------------------------------
# Satellite: model-chosen merge cap
# ---------------------------------------------------------------------------
class TestAdaptiveMergeCap:
    def test_regimes(self, small_grid):
        model = CostModel(
            small_grid, PointSet(np.empty((0, 3))), MachineModel.nominal()
        )
        # Feed-heavy (never queried between syncs): merging buys nothing,
        # the laziest cap wins.  Query-heavy: per-segment CSR probes
        # dominate, aggressive merging pays for itself.
        lazy = model.choose_merge_cap(
            50_000, n_groups=256, batches_per_sync=0.0
        )
        eager = model.choose_merge_cap(
            50_000, n_groups=256, batches_per_sync=1e6
        )
        assert lazy == 64
        assert eager == 2
        assert eager < lazy

    def test_service_auto_cap_retunes_live_index(self, small_grid):
        rng = np.random.default_rng(17)
        d = small_grid.domain
        inc = IncrementalSTKDE(small_grid)
        svc = DensityService(
            inc, backend="direct", index_merge_cap="auto",
            machine=MachineModel.nominal(),
        )
        q = rng.uniform(
            [d.x0, d.y0, d.t0],
            [d.x0 + d.gx, d.y0 + d.gy, d.t0 + d.gt],
            size=(32, 3),
        )
        for i in range(6):
            batch = rng.uniform(
                [d.x0, d.y0, d.t0 + i],
                [d.x0 + d.gx, d.y0 + d.gy, d.t0 + i + 1],
                size=(50, 3),
            )
            inc.slide_window(batch, t_horizon=d.t0 + max(0, i - 3))
            svc.query_points(q)
        cap = svc.stats()["index_merge_cap"]
        assert isinstance(cap, int) and 2 <= cap <= 64
        assert svc.index().merge_segment_cap == cap

    def test_bogus_merge_cap_string_rejected(self, small_grid):
        with pytest.raises(ValueError, match="index_merge_cap"):
            DensityService(
                PointSet(np.zeros((1, 3))), small_grid,
                index_merge_cap="bogus",
            )


# ---------------------------------------------------------------------------
# Satellite: model-chosen retirement-slab thickness
# ---------------------------------------------------------------------------
class TestAdaptiveSlabs:
    def test_choice_never_prices_worse_than_geometric(self, small_grid):
        from repro.core.regions import auto_slab_voxels

        model = CostModel(
            small_grid, PointSet(np.empty((0, 3))), MachineModel.nominal()
        )
        geo = auto_slab_voxels(small_grid)
        span = small_grid.Gt
        bbox_cells = small_grid.Gx * small_grid.Gy * span
        chosen = model.choose_slab_voxels(
            2_000, bbox_cells=bbox_cells, batch_t_voxels=span
        )
        assert isinstance(chosen, int) and chosen >= 1
        # The geometric default sits in the candidate ladder, so pinning
        # the ladder to {geo} must reproduce it exactly...
        assert model.choose_slab_voxels(
            2_000, bbox_cells=bbox_cells, batch_t_voxels=span,
            candidates=(geo,),
        ) == geo
        # ...and the free choice never leaves the ladder's extremes.
        extent = 2 * small_grid.Ht + 1
        assert chosen <= max(2 * geo, extent)

    def test_auto_mode_stays_equivalent_to_monolithic(self, small_grid):
        rng = np.random.default_rng(19)
        d = small_grid.domain
        lo = np.array([d.x0, d.y0, d.t0])
        hi = lo + np.array([d.gx, d.gy, d.gt])
        batch = rng.uniform(lo, hi, size=(300, 3))  # full-t-span batch
        auto = IncrementalSTKDE(small_grid, t_slab_voxels="auto")
        mono = IncrementalSTKDE(small_grid, t_slab_voxels=None)
        auto.add(batch)
        mono.add(batch)
        arriving = rng.uniform(lo, hi, size=(100, 3))
        horizon = d.t0 + 0.3 * d.gt
        auto.slide_window(arriving, horizon)
        mono.slide_window(arriving, horizon)
        np.testing.assert_allclose(
            auto.volume().data, mono.volume().data, rtol=RTOL, atol=ATOL
        )

    def test_thin_batches_fall_back_to_geometric(self, small_grid):
        from repro.core.regions import auto_slab_voxels

        rng = np.random.default_rng(21)
        d = small_grid.domain
        inc = IncrementalSTKDE(small_grid, t_slab_voxels="auto")
        thin = rng.uniform(
            [d.x0, d.y0, d.t0],
            [d.x0 + d.gx, d.y0 + d.gy, d.t0 + d.tres],
            size=(30, 3),
        )
        bbox = None  # _resolve_slab_voxels ignores bbox on the thin path
        assert inc._resolve_slab_voxels(thin, bbox) == auto_slab_voxels(
            small_grid
        )
