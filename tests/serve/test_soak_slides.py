"""Sustained-slide soak: the whole O(delta) pipeline under 50+ slides.

The steady-state contract of the slide pipeline, end to end: a live
window fed by tiny batches must (a) keep the estimator's volume exact
against a cold recompute at ``rtol=1e-12`` — slab subtraction and
straddle restamps never drift — (b) keep the serving index's live
segment count under the merge cap, and (c) keep the index's compaction
debt under its budget after every sync, with bucketing work O(arriving
batch) throughout.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.pb_sym import pb_sym
from repro.core import DomainSpec, GridSpec, PointSet, WorkCounter
from repro.core.incremental import IncrementalSTKDE
from repro.serve import DensityService


N_SLIDES = 55
BATCH = 24
WINDOW_BATCHES = 12
MERGE_CAP = 6


def _grid():
    return GridSpec(DomainSpec.from_voxels(24, 24, 40), hs=2.5, ht=2.0)


def _feed(grid, rng, step, n=BATCH):
    """One tiny arriving batch in its own t-slab (the sliding-feed shape)."""
    t_lo = step * grid.domain.gt / (N_SLIDES + WINDOW_BATCHES)
    t_hi = (step + 1) * grid.domain.gt / (N_SLIDES + WINDOW_BATCHES)
    return np.column_stack([
        rng.uniform(0, grid.domain.gx, n),
        rng.uniform(0, grid.domain.gy, n),
        rng.uniform(t_lo, t_hi, n),
    ])


def test_soak_50_plus_tiny_batch_slides():
    grid = _grid()
    rng = np.random.default_rng(77)
    counter = WorkCounter()
    inc = IncrementalSTKDE(grid, counter=counter)
    svc = DensityService(inc, backend="direct", index_merge_cap=MERGE_CAP)
    window: list = []
    probe = rng.uniform(
        0, [grid.domain.gx, grid.domain.gy, grid.domain.gt], size=(40, 3)
    )

    for step in range(N_SLIDES):
        batch = _feed(grid, rng, step)
        horizon = (
            (step - WINDOW_BATCHES)
            * grid.domain.gt / (N_SLIDES + WINDOW_BATCHES)
        )
        horizon = max(0.0, horizon)
        bucketed_before = svc.counter.index_events_bucketed
        inc.slide_window(batch, t_horizon=horizon)
        window = [b[b[:, 2] >= horizon] for b in window]
        window.append(batch)
        svc.query_points(probe)  # forces the index sync every slide

        idx = svc.index()
        # (b) merge policy bounds the live segment count.
        assert idx.segment_count <= MERGE_CAP, (step, idx.segment_count)
        # (c) compaction debt paid down within budget, post-sync.
        assert idx.dead_rows <= idx.dead_row_budget, (step, idx.dead_rows)
        # O(delta): this slide bucketed ~the arriving batch (plus any
        # straddle-slab survivors the estimator re-minted), never the
        # whole live window.
        delta = svc.counter.index_events_bucketed - bucketed_before
        assert delta <= 2 * BATCH, (step, delta)

    # (a) exactness after 55 slides: rtol=1e-12 against a cold recompute.
    live = np.vstack([b for b in window if len(b)])
    assert inc.n == len(live)
    expect = pb_sym(PointSet(live), grid)
    np.testing.assert_allclose(
        inc.volume().data, expect.data, rtol=1e-12, atol=1e-15
    )

    # Bit-exact warm-vs-cold (carried since PR 2, closed by the canonical
    # cache composition): a cold estimator re-fed the warm window's live
    # units — one add per unit, slabbing disabled so each re-stamps whole
    # — serves the *identical* volume, to the last bit, after 55 slides.
    assert all(tb.buffer is not None for tb in inc._live)
    cold_inc = IncrementalSTKDE(grid, t_slab_voxels=None)
    for _, coords in inc.live_batches:
        cold_inc.add(coords)
    np.testing.assert_array_equal(
        inc.volume().data, cold_inc.volume().data
    )

    # The serving answers ride the same contract: warm merged index vs a
    # cold service over the same estimator state.
    cold = DensityService(inc, backend="direct")
    np.testing.assert_allclose(
        svc.query_points(probe), cold.query_points(probe),
        rtol=1e-12, atol=1e-18,
    )

    # Retirement ran through the slab caches, not survivor restamps: a
    # t-stratified feed never restamps more than a straddle's worth.
    assert counter.slab_buffers_retired > 0
    assert counter.slab_restamp_points <= N_SLIDES * BATCH
    # Storage stayed bounded under 55 slides of churn.
    assert svc.index()._size <= 2 * svc.index().n + 64


def test_soak_merge_disabled_still_exact_but_unbounded_segments():
    """Control: without the merge policy the same soak accumulates one
    segment per live batch — the probe-cost growth the policy exists to
    stop — while answers stay exact."""
    grid = _grid()
    rng = np.random.default_rng(78)
    inc = IncrementalSTKDE(grid)
    svc = DensityService(inc, backend="direct", index_merge_cap=None)
    probe = rng.uniform(
        0, [grid.domain.gx, grid.domain.gy, grid.domain.gt], size=(10, 3)
    )
    for step in range(24):
        horizon = max(
            0.0,
            (step - WINDOW_BATCHES)
            * grid.domain.gt / (N_SLIDES + WINDOW_BATCHES),
        )
        inc.slide_window(_feed(grid, rng, step), t_horizon=horizon)
        svc.query_points(probe)
    assert svc.index().segment_count > MERGE_CAP
    cold = DensityService(inc, backend="direct")
    np.testing.assert_allclose(
        svc.query_points(probe), cold.query_points(probe),
        rtol=1e-12, atol=1e-18,
    )
