"""Tests for the ε-budgeted approximate query tier.

The acceptance-critical property lives here: at ``eps=0.1`` the 95th
percentile of the relative error ``|approx - exact| / max(exact, floor)``
over seeded random batches stays within the budget.  The stop rule
targets ``z * se <= eps * scale`` with ``z=2``, so the *per-query*
standard error lands near ``eps/2`` and the batch p95 sits comfortably
under ``eps`` — any regression in the bound geometry (a too-tight
importance bound breaks unbiasedness) or the variance bookkeeping shows
up as a violated quantile long before it breaks the mean.

Everything else the tier promises is pinned alongside: exactness when
the sample covers every candidate, bit-reproducibility under a fixed
seed, ``eps=None`` staying bit-identical to the exact engine, cache
keys that never alias exact and approximate answers, three-way planner
routing, and the new work counters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.model import CostModel, MachineModel
from repro.core import DomainSpec, GridSpec, PointSet, WorkCounter
from repro.core.kernels import get_kernel
from repro.serve import DensityService, QueryCache
from repro.serve.engine import approx_sum, direct_sum
from repro.serve.index import BucketIndex
from repro.serve.planner import QueryPlanner


def dense_fixture(n=4000, seed=5):
    """A dense 3x3x3-cell index where every query sees ~all events.

    One bandwidth per axis spans a third of the domain, so candidate
    sets are in the thousands — the regime the sampler exists for.
    """
    grid = GridSpec(DomainSpec.from_voxels(36, 36, 36), hs=12.0, ht=12.0)
    rng = np.random.default_rng(seed)
    coords = rng.uniform(0.0, 36.0, size=(n, 3))
    idx = BucketIndex(grid, coords)
    queries = rng.uniform(6.0, 30.0, size=(300, 3))
    return grid, idx, queries


def dense_center_fixture(n=16000, m=200, seed=5):
    """Central-cell queries: every query's candidate set is all ``n``.

    The regime the planner routes to the sampler — avg candidates far
    above the ``~16/eps^2`` expected sample size.
    """
    grid = GridSpec(DomainSpec.from_voxels(36, 36, 36), hs=12.0, ht=12.0)
    rng = np.random.default_rng(seed)
    coords = rng.uniform(0.0, 36.0, size=(n, 3))
    idx = BucketIndex(grid, coords)
    queries = rng.uniform(13.0, 23.0, size=(m, 3))
    return grid, idx, coords, queries


def rel_err(approx, exact):
    mask = exact > 0
    return np.abs(approx[mask] - exact[mask]) / exact[mask]


class TestApproxSum:
    @pytest.mark.parametrize("eps", [0.1, 0.3])
    def test_p95_relative_error_within_budget(self, eps):
        grid, idx, q = dense_fixture()
        kern = get_kernel("epanechnikov")
        norm = grid.normalization(idx.n)
        exact = direct_sum(idx, q, kern, norm)
        approx = approx_sum(idx, q, kern, norm, eps=eps, seed=3)
        assert np.percentile(rel_err(approx, exact), 95) <= eps

    def test_weighted_error_within_budget(self):
        grid = GridSpec(DomainSpec.from_voxels(36, 36, 36), hs=12.0, ht=12.0)
        rng = np.random.default_rng(9)
        coords = rng.uniform(0.0, 36.0, size=(3000, 3))
        w = rng.uniform(0.2, 3.0, size=3000)
        idx = BucketIndex(grid, coords, w)
        q = rng.uniform(6.0, 30.0, size=(200, 3))
        kern = get_kernel("epanechnikov")
        norm = grid.normalization(float(w.sum()))
        exact = direct_sum(idx, q, kern, norm)
        approx = approx_sum(idx, q, kern, norm, eps=0.1, seed=1)
        assert np.percentile(rel_err(approx, exact), 95) <= 0.1

    @pytest.mark.parametrize("kernel", ["quartic", "as_printed"])
    def test_other_kernels_within_budget(self, kernel):
        grid, idx, q = dense_fixture(n=2500)
        kern = get_kernel(kernel)
        norm = grid.normalization(idx.n)
        exact = direct_sum(idx, q, kern, norm)
        approx = approx_sum(idx, q, kern, norm, eps=0.2, seed=7)
        assert np.percentile(rel_err(approx, exact), 95) <= 0.2

    def test_bit_reproducible_under_fixed_seed(self):
        grid, idx, q = dense_fixture()
        kern = get_kernel("epanechnikov")
        norm = grid.normalization(idx.n)
        a = approx_sum(idx, q, kern, norm, eps=0.15, seed=11)
        b = approx_sum(idx, q, kern, norm, eps=0.15, seed=11)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        grid, idx, q = dense_fixture()
        kern = get_kernel("epanechnikov")
        norm = grid.normalization(idx.n)
        a = approx_sum(idx, q, kern, norm, eps=0.15, seed=11)
        b = approx_sum(idx, q, kern, norm, eps=0.15, seed=12)
        assert not np.array_equal(a, b)

    def test_exact_when_sample_covers_all_candidates(self):
        """Once the draw budget reaches the candidate count the engine
        falls back to the exact sparse gather — bit-identical, not just
        close."""
        grid, idx, q = dense_fixture(n=1500)
        kern = get_kernel("epanechnikov")
        norm = grid.normalization(idx.n)
        exact = direct_sum(idx, q, kern, norm)
        approx = approx_sum(
            idx, q, kern, norm, eps=0.5, seed=0, min_sample=10**9
        )
        assert np.array_equal(approx, exact)

    def test_sparse_candidates_fall_back_exact(self, small_grid):
        """Tiny candidate sets never pay sampling: the fallback serves
        them exactly (empty neighbourhoods stay exactly zero)."""
        rng = np.random.default_rng(2)
        coords = rng.uniform([0, 0, 0], [16, 14, 20], size=(50, 3))
        idx = BucketIndex(small_grid, coords)
        q = rng.uniform([0, 0, 0], [16, 14, 20], size=(40, 3))
        kern = get_kernel("epanechnikov")
        norm = small_grid.normalization(50)
        exact = direct_sum(idx, q, kern, norm)
        stats: dict = {}
        approx = approx_sum(
            idx, q, kern, norm, eps=0.1, seed=0, stats_out=stats
        )
        assert np.array_equal(approx, exact)
        assert stats["exact_fallbacks"] > 0

    def test_invalid_eps_rejected(self):
        grid, idx, q = dense_fixture(n=200)
        kern = get_kernel("epanechnikov")
        for bad in (0.0, -0.5):
            with pytest.raises(ValueError):
                approx_sum(idx, q, kern, 1.0, eps=bad)

    def test_counter_and_stats_out(self):
        grid, idx, q = dense_fixture(n=2000)
        kern = get_kernel("epanechnikov")
        c = WorkCounter()
        stats: dict = {}
        approx_sum(
            idx, q, kern, 1.0, c, eps=0.2, seed=4, stats_out=stats
        )
        assert c.sample_rows_drawn > 0
        assert stats["sample_rows_drawn"] == c.sample_rows_drawn
        assert stats["queries"] == q.shape[0]
        assert stats["candidate_rows"] > 0
        assert stats["rel_se_sum"] >= 0.0


class TestPlannerRouting:
    def _planner(self, grid, coords=None):
        pts = PointSet(coords if coords is not None else np.empty((0, 3)))
        return QueryPlanner(
            CostModel(grid, pts, MachineModel.nominal())
        )

    def test_dense_batch_routes_approx(self):
        grid, idx, coords, q = dense_center_fixture()
        plan = self._planner(grid, coords).plan_points(
            idx, q, volume_ready=False, eps=0.1
        )
        assert plan.backend == "approx"
        assert plan.eps == 0.1
        assert plan.approx_seconds < min(
            plan.direct_seconds, plan.lookup_seconds
        )
        assert "approx" in plan.describe()

    def test_no_eps_never_routes_approx(self):
        grid, idx, q = dense_fixture()
        plan = self._planner(grid).plan_points(idx, q, volume_ready=False)
        assert plan.backend != "approx"
        assert plan.approx_seconds == float("inf")
        assert plan.eps is None

    def test_force_approx_requires_eps(self):
        grid, idx, q = dense_fixture(n=100)
        with pytest.raises(ValueError):
            self._planner(grid).plan_points(
                idx, q, volume_ready=False, force="approx"
            )

    def test_tight_eps_prices_toward_exact(self):
        """The predicted sample size grows as 1/eps^2, so a tight budget
        must cost more than a loose one and cap at the exact plan."""
        grid, idx, q = dense_fixture()
        model = CostModel(
            grid, PointSet(np.empty((0, 3))), MachineModel.nominal()
        )
        m = q.shape[0]
        cand = int(idx.candidate_counts(q).sum())
        loose = model.predict_approx_query(m, cand, 0.3)
        tight = model.predict_approx_query(m, cand, 0.01)
        assert loose < tight


class TestServiceEps:
    def _service(self, n=4000, **kw):
        grid, idx, q = dense_fixture(n=n)
        rng = np.random.default_rng(1)
        pts = PointSet(rng.uniform(0.0, 36.0, size=(n, 3)))
        svc = DensityService(
            pts, grid, machine=MachineModel.nominal(), **kw
        )
        return svc, q

    def test_eps_none_bit_identical_to_exact(self):
        svc, q = self._service()
        dens = svc.query_points(q, backend="direct")
        ref = direct_sum(
            svc.index(), q, svc.kernel, svc._norm(), WorkCounter()
        )
        assert np.array_equal(dens, ref)
        assert svc.counter.queries_approx == 0
        assert svc.counter.queries_exact == q.shape[0]

    def test_auto_routes_approx_and_meets_budget(self):
        grid, idx, coords, q = dense_center_fixture()
        svc = DensityService(
            PointSet(coords), grid, machine=MachineModel.nominal()
        )
        exact = svc.query_points(q, backend="direct")
        plans: list = []
        approx = svc.query_points(q, eps=0.1, seed=3, plan_out=plans)
        assert plans[-1].backend == "approx"
        assert np.percentile(rel_err(approx, exact), 95) <= 0.1
        assert svc.counter.queries_approx == q.shape[0]
        assert svc.counter.sample_rows_drawn > 0

    def test_cache_never_aliases_exact_and_approx(self):
        svc, q = self._service()
        exact = svc.query_points(q)
        a1 = svc.query_points(q, eps=0.2, seed=3)
        # Exact re-query must return the exact entry, not the sampled one.
        assert np.array_equal(svc.query_points(q), exact)
        # Same (eps, seed) hits the cached sampled entry bit-identically.
        assert np.array_equal(svc.query_points(q, eps=0.2, seed=3), a1)
        # Different seed or budget is a different entry.
        hits = svc.cache.stats()["hits"]
        svc.query_points(q, eps=0.2, seed=4)
        svc.query_points(q, eps=0.25, seed=3)
        assert svc.cache.stats()["hits"] == hits

    def test_cache_key_includes_eps_and_seed(self):
        base = QueryCache.make_key(1, "points", "auto", "d", "exact")
        k1 = QueryCache.make_key(1, "points", "auto", "d", "eps", 0.1, 0)
        k2 = QueryCache.make_key(1, "points", "auto", "d", "eps", 0.1, 1)
        k3 = QueryCache.make_key(1, "points", "auto", "d", "eps", 0.2, 0)
        assert len({base, k1, k2, k3}) == 4

    def test_pinned_approx_requires_eps(self):
        svc, q = self._service(n=300)
        with pytest.raises(ValueError):
            svc.query_points(q, backend="approx")
        out = svc.query_points(q, backend="approx", eps=0.3, seed=1)
        assert out.shape == (q.shape[0],)
        assert svc._backend_calls["approx"] == 1

    def test_invalid_eps_rejected(self):
        svc, q = self._service(n=300)
        with pytest.raises(ValueError):
            svc.query_points(q, eps=0.0)

    def test_stats_blob_reports_realised_eps(self):
        svc, q = self._service()
        svc.query_points(q)  # one exact batch
        svc.query_points(q, backend="approx", eps=0.1, seed=3)
        st = svc.stats()
        blob = st["approx"]
        assert blob["queries"] == q.shape[0]
        assert blob["eps_requested_mean"] == pytest.approx(0.1)
        # Realised error estimate: converged queries stop at se <= eps/2.
        assert 0.0 < blob["eps_realised_mean"] <= 0.1
        assert blob["sample_rows_drawn"] > 0
        assert st["work"]["queries_exact"] == q.shape[0]
        assert st["work"]["queries_approx"] == q.shape[0]

    def test_stats_blob_empty_before_any_approx(self):
        svc, q = self._service(n=300)
        svc.query_points(q)
        blob = svc.stats()["approx"]
        assert blob["queries"] == 0
        assert blob["eps_requested_mean"] is None
        assert blob["eps_realised_mean"] is None


class TestShardedEps:
    def test_sharded_eps_reproducible_and_counted(self):
        from repro.serve import ShardedDensityService

        grid = GridSpec(
            DomainSpec.from_voxels(36, 36, 36), hs=12.0, ht=12.0
        )
        rng = np.random.default_rng(1)
        pts = PointSet(rng.uniform(0.0, 36.0, size=(4000, 3)))
        q = rng.uniform(6.0, 30.0, size=(120, 3))
        exact_ref = DensityService(
            pts, grid, machine=MachineModel.nominal()
        ).query_points(q, backend="direct")
        svc = ShardedDensityService(
            pts, grid, workers=2, machine=MachineModel.nominal()
        )
        try:
            a1 = svc.query_points(q, backend="sharded", eps=0.1, seed=3)
            a2 = svc.query_points(q, backend="sharded", eps=0.1, seed=3)
            assert np.array_equal(a1, a2)
            assert np.percentile(rel_err(a1, exact_ref), 95) <= 0.1
            ex = svc.query_points(q, backend="sharded")
            np.testing.assert_allclose(ex, exact_ref, rtol=1e-10)
            st = svc.stats()
            assert st["work"]["queries_approx"] == 2 * q.shape[0]
            assert st["work"]["queries_exact"] >= q.shape[0]
            assert st["work"]["sample_rows_drawn"] > 0
        finally:
            svc.close()


class TestCliEps:
    def test_parser_accepts_eps_and_seed(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["query", "--points", "p.csv", "--hs", "2", "--ht", "2",
             "--queries", "q.csv", "--eps", "0.1", "--seed", "7",
             "--backend", "approx"]
        )
        assert args.eps == 0.1
        assert args.seed == 7
        assert args.backend == "approx"

    def test_query_cli_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        rng = np.random.default_rng(0)
        pts = tmp_path / "events.csv"
        qs = tmp_path / "queries.csv"
        out = tmp_path / "dens.csv"
        np.savetxt(
            pts, rng.uniform(0.0, 36.0, size=(2500, 3)),
            delimiter=",", header="x,y,t", comments="",
        )
        np.savetxt(
            qs, rng.uniform(6.0, 30.0, size=(60, 3)),
            delimiter=",", header="x,y,t", comments="",
        )
        rc = main([
            "query", "--points", str(pts), "--hs", "12", "--ht", "12",
            "--queries", str(qs), "--eps", "0.2", "--seed", "3",
            "--backend", "approx", "--out", str(out), "--stats",
        ])
        assert rc == 0
        dens = np.loadtxt(out, delimiter=",", skiprows=1)
        assert dens.shape == (60, 4)
        blob = capsys.readouterr().out
        assert '"queries_approx": 60' in blob
        assert '"eps_requested_mean": 0.2' in blob

    def test_eps_without_queries_rejected(self, tmp_path):
        from repro.cli import main

        pts = tmp_path / "events.csv"
        np.savetxt(
            pts, np.random.default_rng(0).uniform(0, 8, size=(20, 3)),
            delimiter=",", header="x,y,t", comments="",
        )
        with pytest.raises(SystemExit):
            main([
                "query", "--points", str(pts), "--hs", "2", "--ht", "2",
                "--slice", "0", "--eps", "0.1",
            ])

    def test_backend_approx_without_eps_rejected(self, tmp_path):
        from repro.cli import main

        pts = tmp_path / "events.csv"
        np.savetxt(
            pts, np.random.default_rng(0).uniform(0, 8, size=(20, 3)),
            delimiter=",", header="x,y,t", comments="",
        )
        with pytest.raises(SystemExit):
            main([
                "query", "--points", str(pts), "--hs", "2", "--ht", "2",
                "--queries", str(pts), "--backend", "approx",
            ])
