"""Tests for span-splitting gap relocation in the bucket index.

Whole-segment relocation wedges when no single gap fits a large
consolidated segment — the fragmented-tail shape that used to force a
full O(live) compaction.  These tests pin the replacement:
``_relocate_split`` packs a segment into several gap spans (arbitrary
split boundaries for simple segments, member boundaries for
consolidated ones), the compaction-debt loop uses it before giving up,
and every index invariant — exact densities against a cold rebuild,
member retirement's contiguous-interval filter, re-consolidation —
survives a split move.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DomainSpec, GridSpec, WorkCounter
from repro.core.kernels import get_kernel
from repro.serve.engine import direct_sum
from repro.serve.index import BucketIndex


@pytest.fixture
def grid():
    return GridSpec(DomainSpec.from_voxels(32, 32, 32), hs=4.0, ht=4.0)


def densities(idx, q):
    return direct_sum(idx, q, get_kernel("epanechnikov"), 1.0)


def cold_rebuild(grid, batches):
    idx = BucketIndex(grid, merge_segment_cap=None)
    for k, v in batches.items():
        idx.add_segment(k, v)
    return idx


def probe_queries(rng, m=256):
    return rng.uniform(0.0, 32.0, size=(m, 3))


class TestRelocateSplit:
    def _fragmented(self, grid, rng):
        """A 300-row consolidated segment HIGH in storage above three
        non-adjacent gaps (100 + 100 + 150 rows) none of which fits it.

        Fillers occupy the hole the consolidation itself vacates, so the
        gaps left after retirement genuinely cannot coalesce.
        """
        idx = BucketIndex(grid, merge_segment_cap=None)
        bs = {i: rng.uniform(0.0, 32.0, size=(100, 3)) for i in range(6)}
        for k, v in bs.items():
            idx.add_segment(k, v)
        idx.consolidate_segments([3, 4, 5])  # appended at the tail
        f1 = rng.uniform(0.0, 32.0, size=(150, 3))
        f2 = rng.uniform(0.0, 32.0, size=(150, 3))
        idx.add_segment("f1", f1)  # fills [300, 450)
        idx.add_segment("f2", f2)  # fills [450, 600)
        bs["f1"] = f1
        idx.remove_segment(0)     # gap [0, 100)
        idx.remove_segment(2)     # gap [200, 300)
        idx.remove_segment("f2")  # gap [450, 600)
        bs.pop(0)
        bs.pop(2)
        return idx, bs

    def test_consolidated_segment_splits_across_gaps(self, grid):
        rng = np.random.default_rng(0)
        idx, bs = self._fragmented(grid, rng)
        seg = next(
            s for s in idx._segments.values() if s.members is not None
        )
        old_hi = seg.row_hi
        assert idx._take_gap(seg.n, limit=seg.row_hi - seg.n) is None
        assert idx._relocate_split(seg, WorkCounter())
        assert seg.row_hi < old_hi
        q = probe_queries(rng)
        np.testing.assert_allclose(
            densities(idx, q), densities(cold_rebuild(grid, bs), q),
            rtol=1e-12,
        )

    def test_member_retirement_after_split_move(self, grid):
        """The member-boundary constraint exists for exactly this:
        ``_retire_member``'s ``[lo, hi)`` interval filter must keep
        working after the segment's rows scatter across spans."""
        rng = np.random.default_rng(1)
        idx, bs = self._fragmented(grid, rng)
        seg = next(
            s for s in idx._segments.values() if s.members is not None
        )
        assert idx._relocate_split(seg, WorkCounter())
        n0 = idx.n
        idx._retire_member(seg, 4, WorkCounter())
        assert idx.n == n0 - 100
        q = probe_queries(rng)
        ref = {k: v for k, v in bs.items() if k != 4}
        np.testing.assert_allclose(
            densities(idx, q), densities(cold_rebuild(grid, ref), q),
            rtol=1e-12,
        )

    def test_reconsolidation_after_split_move(self, grid):
        rng = np.random.default_rng(2)
        idx, bs = self._fragmented(grid, rng)
        seg = next(
            s for s in idx._segments.values() if s.members is not None
        )
        assert idx._relocate_split(seg, WorkCounter())
        idx.consolidate_segments(list(idx._segments))
        q = probe_queries(rng)
        np.testing.assert_allclose(
            densities(idx, q), densities(cold_rebuild(grid, bs), q),
            rtol=1e-12,
        )

    def test_simple_segment_splits_at_arbitrary_boundaries(self, grid):
        rng = np.random.default_rng(3)
        idx = BucketIndex(grid, merge_segment_cap=None)
        bs = {}
        for i, n in enumerate((150, 90, 150, 250)):
            bs[i] = rng.uniform(0.0, 32.0, size=(n, 3))
            idx.add_segment(i, bs[i])
        idx.remove_segment(0)
        idx.remove_segment(2)  # gaps of 150 + 150 below the 250-row seg
        seg = idx._segments[3]
        assert idx._take_gap(seg.n, limit=seg.row_hi - seg.n) is None
        old_hi = seg.row_hi
        assert idx._relocate_split(seg, WorkCounter())
        assert seg.row_hi < old_hi
        q = probe_queries(rng)
        ref = cold_rebuild(grid, {k: bs[k] for k in (1, 3)})
        np.testing.assert_allclose(
            densities(idx, q), densities(ref, q), rtol=1e-12
        )

    def test_returns_false_when_gaps_cannot_hold_segment(self, grid):
        rng = np.random.default_rng(4)
        idx = BucketIndex(grid, merge_segment_cap=None)
        idx.add_segment("small", rng.uniform(0.0, 32.0, size=(10, 3)))
        idx.add_segment("big", rng.uniform(0.0, 32.0, size=(500, 3)))
        idx.remove_segment("small")  # only a 10-row gap below 500 rows
        seg = idx._segments["big"]
        assert not idx._relocate_split(seg, WorkCounter())
        # Nothing mutated by the failed plan.
        assert idx.dead_rows == 10
        assert seg.n == 500


class TestNoFullCompactCliff:
    def test_churn_over_fragmented_tail_never_full_compacts(
        self, grid, monkeypatch
    ):
        """Sustained slide-like churn with merging: dead rows stay under
        budget every sync and the O(live) compact never fires."""
        rng = np.random.default_rng(5)
        compacts = []
        orig = BucketIndex._compact

        def spy(self):
            compacts.append(1)
            orig(self)

        monkeypatch.setattr(BucketIndex, "_compact", spy)
        idx = BucketIndex(grid, merge_segment_cap=4)
        c = WorkCounter()
        live = {}
        seq = 0
        for _ in range(8):
            live[seq] = rng.uniform(0.0, 32.0, size=(200, 3))
            seq += 1
        idx.sync(list(live.items()), c)
        for step in range(40):
            for k in sorted(live)[:2]:
                live.pop(k)
            for _ in range(2):
                live[seq] = rng.uniform(
                    0.0, 32.0, size=(int(rng.integers(40, 400)), 3)
                )
                seq += 1
            idx.sync(list(live.items()), c)
            assert idx.dead_rows <= idx.dead_row_budget
        assert not compacts
        q = probe_queries(rng)
        np.testing.assert_allclose(
            densities(idx, q),
            densities(cold_rebuild(grid, live), q),
            rtol=1e-12,
        )

    def test_debt_paydown_uses_split_when_whole_wedges(self, grid):
        """A paydown pass over a fragmented tail relocates by splitting
        (rows_compacted grows by the moved segment, debt shrinks) rather
        than falling through to the full-compact valve."""
        rng = np.random.default_rng(6)
        idx = BucketIndex(grid, merge_segment_cap=None)
        bs = {}
        # Alternating large-dead / small-live batches below one big live
        # segment: total dead exceeds the budget and the gaps cannot
        # coalesce, yet no single gap fits the big segment.
        for i in range(10):
            n = 400 if i % 2 == 0 else 50
            bs[i] = rng.uniform(0.0, 32.0, size=(n, 3))
            idx.add_segment(i, bs[i])
        big = rng.uniform(0.0, 32.0, size=(450, 3))
        idx.add_segment("big", big)
        keep = {}
        for i in range(10):
            if i % 2:
                keep[i] = bs[i]
            else:
                idx.remove_segment(i)
        before = idx.rows_compacted
        c = WorkCounter()
        idx._pay_compaction_debt(c)
        assert idx.dead_rows <= idx.dead_row_budget
        assert idx.rows_compacted > before
        q = probe_queries(rng)
        ref = dict(keep)
        ref["big"] = big
        np.testing.assert_allclose(
            densities(idx, q), densities(cold_rebuild(grid, ref), q),
            rtol=1e-12,
        )
