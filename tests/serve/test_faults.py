"""Chaos suite: deterministic fault injection against the sharded tier.

The recovery contract under test: any single worker fault — crash,
wedge, dropped reply — is absorbed by the supervisor (respawn + replay
within the restart budget) and the recovered shard answers **exactly**
what a cold single-process rebuild would (``rtol=1e-12``).  Faults the
budget cannot absorb surface as typed errors (:class:`ShardDown`,
:class:`ShardFailed`) or, under ``on_shard_failure="partial"``, as
coverage-tagged :class:`PartialResult` degraded reads.  The
:class:`WorkCounter` recovery gauges are pinned exactly — restarts,
replayed batches, and retries are part of the contract, not incidental.

Everything is driven through :class:`FaultPlan` — the same deterministic
triggers ``REPRO_FAULTS`` injects in production — so each test names the
shard, the op, and the nth request that dies.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np
import pytest

from repro.core import DomainSpec, GridSpec, PointSet
from repro.core.incremental import IncrementalSTKDE
from repro.serve import (
    CircuitOpen,
    DensityService,
    FaultPlan,
    FaultSpec,
    PartialResult,
    ServeError,
    ShardDown,
    ShardFailed,
    ShardTimeout,
    ShardWorker,
    ShardedDensityService,
    TrafficFrontend,
)
from repro.serve.faults import FAULTS_ENV
from repro.serve.supervisor import ShardLog

RTOL = 1e-12
ATOL = 1e-300

from repro.analysis.model import MachineModel

NOMINAL = MachineModel.nominal()


def make_grid(vox=(24, 24, 12), hs=4.0, ht=3.0) -> GridSpec:
    return GridSpec(DomainSpec.from_voxels(*vox), hs=hs, ht=ht)


def span_of(grid: GridSpec) -> np.ndarray:
    d = grid.domain
    return np.array([d.gx, d.gy, d.gt])


# ---------------------------------------------------------------------------
# FaultSpec / FaultPlan / FaultInjector (no processes)
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_spec_validation(self):
        with pytest.raises(ValueError, match="action"):
            FaultSpec("explode")
        with pytest.raises(ValueError, match="nth"):
            FaultSpec("crash", nth=0)
        with pytest.raises(ValueError, match="seconds"):
            FaultSpec("delay", seconds=-1.0)

    def test_spec_matching_wildcards(self):
        any_spec = FaultSpec("crash")
        assert any_spec.matches(0, "add") and any_spec.matches(3, "slide")
        pinned = FaultSpec("crash", shard=1, op="query_points")
        assert pinned.matches(1, "query_points")
        assert not pinned.matches(0, "query_points")
        assert not pinned.matches(1, "slide")

    def test_json_roundtrip_and_single_object_form(self):
        plan = FaultPlan((
            FaultSpec("crash", shard=1, op="slide", nth=2),
            FaultSpec("wedge", seconds=9.0, persist=True),
        ))
        assert FaultPlan.from_json(plan.to_json()) == plan
        single = FaultPlan.from_json('{"action": "drop", "shard": 0}')
        assert single.specs == (FaultSpec("drop", shard=0),)
        with pytest.raises(ValueError, match="list"):
            FaultPlan.from_json('"crash"')

    def test_from_env(self):
        assert FaultPlan.from_env({}) is None
        assert FaultPlan.from_env({FAULTS_ENV: "   "}) is None
        plan = FaultPlan.from_env(
            {FAULTS_ENV: '[{"action": "crash", "nth": 3}]'}
        )
        assert plan.specs == (FaultSpec("crash", nth=3),)

    def test_respawn_view_keeps_persistent_specs_only(self):
        one_shot = FaultPlan((FaultSpec("crash", shard=1),))
        assert one_shot.respawn_view() is None
        mixed = FaultPlan((
            FaultSpec("crash", shard=1),
            FaultSpec("crash", shard=1, persist=True),
        ))
        view = mixed.respawn_view()
        assert view is not None and len(view.specs) == 1
        assert view.specs[0].persist

    def test_injector_counts_matches_and_fires_once(self):
        plan = FaultPlan((
            FaultSpec("crash", shard=1, op="query_points", nth=2),
        ))
        other = plan.injector(0)  # wrong shard: never fires
        assert all(
            other.on_request("query_points") is None for _ in range(4)
        )
        inj = plan.injector(1)
        assert inj.on_request("slide") is None  # wrong op: not counted
        assert inj.on_request("query_points") is None  # 1st match
        spec = inj.on_request("query_points")  # 2nd match: fire
        assert spec is plan.specs[0]
        assert inj.on_request("query_points") is None  # one-shot


# ---------------------------------------------------------------------------
# Typed fault surface
# ---------------------------------------------------------------------------
class TestTypedErrors:
    def test_shard_failed_message_and_attrs(self):
        exc = ShardFailed(3, "add", "worker died", exitcode=1)
        assert str(exc).startswith("shard worker 3 failed 'add'")
        assert "worker died" in str(exc) and "exit code 1" in str(exc)
        assert exc.shard_id == 3 and exc.op == "add" and exc.retryable
        assert isinstance(exc, RuntimeError)  # legacy handlers keep working
        assert isinstance(exc, ServeError)
        assert not ShardFailed(0, "x", retryable=False).retryable

    def test_timeout_and_down_retryability(self):
        t = ShardTimeout(2, "query_points", 1.5)
        assert isinstance(t, ShardFailed) and t.retryable
        assert t.timeout == 1.5 and "wedged" in str(t)
        d = ShardDown(2, "query_points")
        assert isinstance(d, ShardFailed) and not d.retryable
        assert "restart budget" in str(d)

    def test_circuit_open_carries_routing_facts(self):
        exc = CircuitOpen((1, 3), 0.25)
        assert exc.shard_ids == (1, 3)
        assert exc.retry_after_s == 0.25
        assert not exc.retryable

    def test_partial_result_is_a_tagged_ndarray(self):
        vals = np.array([1.0, 2.0, 3.0])
        out = PartialResult(vals, 0.75, (1,))
        assert isinstance(out, np.ndarray)
        assert out.sum() == pytest.approx(6.0)
        assert out.coverage == 0.75 and out.failed_shards == (1,)
        assert out.degraded
        view = out[:2]  # views inherit the tags
        assert isinstance(view, PartialResult)
        assert view.coverage == 0.75
        complete = PartialResult(vals, 1.0)
        assert not complete.degraded


# ---------------------------------------------------------------------------
# ShardLog: the replay source of truth
# ---------------------------------------------------------------------------
class TestShardLog:
    def _coords(self, ts):
        ts = np.asarray(ts, dtype=np.float64)
        return np.column_stack([np.ones_like(ts), np.ones_like(ts), ts])

    def test_static_replaces_prior_entries(self):
        log = ShardLog()
        log.record("add", self._coords([1.0, 2.0]))
        log.record("static", (self._coords([5.0]), None))
        assert len(log) == 1 and log.rows == 1

    def test_order_preserved_for_remove_semantics(self):
        log = ShardLog()
        log.record("add", self._coords([1.0, 2.0, 3.0]))
        log.record("remove", self._coords([2.0]))
        assert [op for op, _ in log.entries] == ["add", "remove"]
        assert log.rows == 4

    def test_slide_truncates_retired_rows_and_empty_entries(self):
        log = ShardLog()
        log.record("add", self._coords(np.arange(10.0)))
        log.record("slide", (self._coords([11.0, 12.0]), 5.0))
        assert log.horizon == 5.0
        # add rows with t < 5 retired; slide arrivals kept.
        assert log.rows == 5 + 2
        # A horizon past everything empties (and drops) every entry:
        # the log is bounded by live traffic, not lifetime.
        log.record("slide", (np.empty((0, 3)), 100.0))
        assert len(log) == 0 and log.rows == 0
        assert log.horizon == 100.0

    def test_horizon_only_moves_forward(self):
        log = ShardLog()
        log.record("add", self._coords([1.0, 9.0]))
        log.truncate(5.0)
        log.truncate(2.0)  # stale horizon: no-op
        assert log.horizon == 5.0 and log.rows == 1

    def test_static_truncation_respects_weights(self):
        log = ShardLog()
        coords = self._coords([1.0, 6.0, 8.0])
        weights = np.array([2.0, 3.0, 4.0])
        log.record("static", (coords, weights))
        log.truncate(5.0)
        (op, (kept, w)), = log.entries
        assert op == "static" and kept.shape[0] == 2
        np.testing.assert_array_equal(w, [3.0, 4.0])


# ---------------------------------------------------------------------------
# Crash recovery (processes): respawn + replay == cold rebuild
# ---------------------------------------------------------------------------
class TestCrashRecovery:
    def test_injected_crash_on_query_recovers_exactly(self):
        grid = make_grid()
        rng = np.random.default_rng(31)
        pts = PointSet(rng.uniform(0, span_of(grid), size=(200, 3)))
        queries = rng.uniform(0, span_of(grid), size=(60, 3))
        plan = FaultPlan((
            FaultSpec("crash", shard=1, op="query_points", nth=2),
        ))
        with ShardedDensityService(
            pts, grid, workers=2, machine=NOMINAL,
            fault_plan=plan, restart_backoff_s=0.01,
        ) as svc:
            expect = svc.query_points(queries, backend="sharded")
            out = svc.query_points(queries, backend="sharded")  # crash+heal
            np.testing.assert_allclose(out, expect, rtol=RTOL, atol=ATOL)
            assert svc.counter.shard_restarts == 1
            assert svc.counter.requests_retried == 1
            # Static state is one log entry: exactly one batch replayed.
            assert svc.counter.shard_replayed_batches == 1
            # The healed pool keeps serving.
            again = svc.query_points(queries, backend="sharded")
            np.testing.assert_allclose(again, expect, rtol=RTOL, atol=ATOL)

    def test_crash_mid_slide_matches_cold_rebuild(self):
        """The replay-completes-the-mutation invariant: the batch is
        logged before the send, so a worker dying mid-``slide`` is
        healed into a state identical to a cold single-process rebuild
        that applied every mutation."""
        grid = make_grid()
        rng = np.random.default_rng(37)
        span = span_of(grid)
        seed = rng.uniform(0, span, size=(240, 3))
        arriving = rng.uniform(0, span, size=(80, 3))
        arriving[:, 2] = grid.domain.t0 + grid.domain.gt * 0.8
        horizon = grid.domain.t0 + 3.0
        queries = rng.uniform(0, span, size=(50, 3))
        plan = FaultPlan((FaultSpec("crash", shard=1, op="slide"),))
        with ShardedDensityService(
            None, grid, workers=2, machine=NOMINAL,
            fault_plan=plan, restart_backoff_s=0.01,
        ) as svc:
            svc.add(seed)
            svc.slide_window(arriving, horizon)  # shard 1 dies mid-slide
            assert svc.counter.shard_restarts == 1
            assert svc.counter.requests_retried == 1
            inc = IncrementalSTKDE(grid)
            inc.add(seed)
            inc.slide_window(arriving, horizon)
            ref = DensityService(inc, machine=NOMINAL)
            np.testing.assert_allclose(
                svc.query_points(queries),
                ref.query_points(queries, backend="direct"),
                rtol=RTOL, atol=ATOL,
            )
            # The healed shard keeps taking mutations.
            more = rng.uniform(0, span, size=(40, 3))
            more[:, 2] = grid.domain.t0 + grid.domain.gt * 0.9
            svc.slide_window(more, horizon + 1.0)
            inc.slide_window(more, horizon + 1.0)
            np.testing.assert_allclose(
                svc.query_points(queries),
                ref.query_points(queries, backend="direct"),
                rtol=RTOL, atol=ATOL,
            )
            recovery = svc.stats()["recovery"]
            assert recovery["restarts_per_shard"][1] == 1
            assert recovery["down_shards"] == []

    def test_wedged_worker_times_out_and_recovers(self):
        grid = make_grid()
        rng = np.random.default_rng(41)
        pts = PointSet(rng.uniform(0, span_of(grid), size=(150, 3)))
        queries = rng.uniform(0, span_of(grid), size=(40, 3))
        plan = FaultPlan((
            FaultSpec("wedge", shard=0, op="query_points", seconds=30.0),
        ))
        ref = DensityService(pts, grid, machine=NOMINAL)
        with ShardedDensityService(
            pts, grid, workers=2, machine=NOMINAL,
            fault_plan=plan, request_timeout=1.0, restart_backoff_s=0.01,
        ) as svc:
            t0 = time.perf_counter()
            out = svc.query_points(queries, backend="sharded")
            elapsed = time.perf_counter() - t0
            assert elapsed < 15.0  # deadline + respawn, not a 30s hang
            np.testing.assert_allclose(
                out, ref.query_points(queries, backend="direct"),
                rtol=RTOL, atol=ATOL,
            )
            assert svc.counter.shard_restarts == 1

    def test_dropped_reply_recovers_via_deadline(self):
        grid = make_grid()
        rng = np.random.default_rng(43)
        pts = PointSet(rng.uniform(0, span_of(grid), size=(120, 3)))
        queries = rng.uniform(0, span_of(grid), size=(30, 3))
        plan = FaultPlan((FaultSpec("drop", shard=0, op="query_points"),))
        ref = DensityService(pts, grid, machine=NOMINAL)
        with ShardedDensityService(
            pts, grid, workers=2, machine=NOMINAL,
            fault_plan=plan, request_timeout=0.5, restart_backoff_s=0.01,
        ) as svc:
            out = svc.query_points(queries, backend="sharded")
            np.testing.assert_allclose(
                out, ref.query_points(queries, backend="direct"),
                rtol=RTOL, atol=ATOL,
            )
            assert svc.counter.shard_restarts == 1

    def test_delay_fault_is_absorbed_without_recovery(self):
        grid = make_grid()
        rng = np.random.default_rng(47)
        pts = PointSet(rng.uniform(0, span_of(grid), size=(120, 3)))
        queries = rng.uniform(0, span_of(grid), size=(30, 3))
        plan = FaultPlan((
            FaultSpec("delay", shard=0, op="query_points", seconds=0.05),
        ))
        ref = DensityService(pts, grid, machine=NOMINAL)
        with ShardedDensityService(
            pts, grid, workers=2, machine=NOMINAL,
            fault_plan=plan, request_timeout=5.0,
        ) as svc:
            out = svc.query_points(queries, backend="sharded")
            np.testing.assert_allclose(
                out, ref.query_points(queries, backend="direct"),
                rtol=RTOL, atol=ATOL,
            )
            assert svc.counter.shard_restarts == 0

    def test_app_error_never_restarts_and_never_degrades(self):
        """An injected application error comes from a *healthy* worker:
        replaying it cannot help, and ``"partial"`` must not mask it —
        and the drained pool keeps serving afterwards."""
        grid = make_grid()
        rng = np.random.default_rng(53)
        pts = PointSet(rng.uniform(0, span_of(grid), size=(120, 3)))
        queries = rng.uniform(0, span_of(grid), size=(30, 3))
        plan = FaultPlan((FaultSpec("error", shard=0, op="query_points"),))
        ref = DensityService(pts, grid, machine=NOMINAL)
        with ShardedDensityService(
            pts, grid, workers=2, machine=NOMINAL, fault_plan=plan,
        ) as svc:
            with pytest.raises(ShardFailed, match="injected fault"):
                svc.query_points(
                    queries, backend="sharded", on_shard_failure="partial"
                )
            assert svc.counter.shard_restarts == 0
            # Drain-before-raise: the surviving worker's reply was read,
            # so the next scatter is clean.
            np.testing.assert_allclose(
                svc.query_points(queries, backend="sharded"),
                ref.query_points(queries, backend="direct"),
                rtol=RTOL, atol=ATOL,
            )

    def test_env_injected_plan_drives_recovery(self, monkeypatch):
        grid = make_grid()
        rng = np.random.default_rng(59)
        pts = PointSet(rng.uniform(0, span_of(grid), size=(100, 3)))
        queries = rng.uniform(0, span_of(grid), size=(25, 3))
        monkeypatch.setenv(
            FAULTS_ENV,
            '[{"action": "crash", "shard": 0, "op": "query_points"}]',
        )
        ref = DensityService(pts, grid, machine=NOMINAL)
        with ShardedDensityService(
            pts, grid, workers=2, machine=NOMINAL, restart_backoff_s=0.01,
        ) as svc:
            out = svc.query_points(queries, backend="sharded")
            np.testing.assert_allclose(
                out, ref.query_points(queries, backend="direct"),
                rtol=RTOL, atol=ATOL,
            )
            assert svc.counter.shard_restarts == 1


# ---------------------------------------------------------------------------
# Budget exhaustion: ShardDown + degraded reads
# ---------------------------------------------------------------------------
class TestDegradedReads:
    def _doomed(self, **kw):
        grid = make_grid()
        rng = np.random.default_rng(61)
        pts = PointSet(rng.uniform(0, span_of(grid), size=(200, 3)))
        queries = rng.uniform(0, span_of(grid), size=(40, 3))
        plan = FaultPlan((
            FaultSpec("crash", shard=1, op="query_points", persist=True),
        ))
        svc = ShardedDensityService(
            pts, grid, workers=2, machine=NOMINAL,
            fault_plan=plan, restart_backoff_s=0.01, **kw,
        )
        return svc, queries

    def test_zero_budget_raises_shard_down(self):
        svc, queries = self._doomed(max_restarts=0)
        try:
            with pytest.raises(ShardDown, match="restart budget"):
                svc.query_points(queries, backend="sharded")
            assert svc._sup.is_down(1)
            # Down is sticky: later queries fail fast and typed.
            t0 = time.perf_counter()
            with pytest.raises(ShardFailed, match="shard worker 1"):
                svc.query_points(queries, backend="sharded")
            assert time.perf_counter() - t0 < 2.0
        finally:
            svc.close()
        svc.close()  # idempotent after a fault

    def test_partial_mode_returns_coverage_tagged_result(self):
        svc, queries = self._doomed(
            max_restarts=1, on_shard_failure="partial"
        )
        try:
            out = svc.query_points(queries, backend="sharded")
            assert isinstance(out, PartialResult)
            assert out.degraded and out.failed_shards == (1,)
            w = svc._shard_weight
            assert out.coverage == pytest.approx(1.0 - w[1] / sum(w))
            assert 0.0 < out.coverage < 1.0
            assert svc.counter.degraded_queries == queries.shape[0]
            # Surviving partials are a lower bound on the full answer.
            ref = DensityService(
                PointSet(svc._static_coords), svc.grid, machine=NOMINAL
            ).query_points(queries, backend="direct")
            assert np.all(np.asarray(out) <= ref + 1e-15)
            # stats() stays available with the shard down.
            st = svc.stats()
            assert 1 in [
                s for s, ws in enumerate(st["workers"])
                if ws.get("down")
            ] or 1 in st["recovery"]["down_shards"]
        finally:
            svc.close()

    def test_per_call_policy_overrides_service_default(self):
        svc, queries = self._doomed(max_restarts=0)
        try:
            out = svc.query_points(
                queries, backend="sharded", on_shard_failure="partial"
            )
            assert isinstance(out, PartialResult) and out.degraded
            with pytest.raises(ValueError, match="on_shard_failure"):
                svc.query_points(
                    queries, backend="sharded", on_shard_failure="bogus"
                )
        finally:
            svc.close()


# ---------------------------------------------------------------------------
# Worker shutdown under faults (satellite: deadline-aware close)
# ---------------------------------------------------------------------------
class TestWorkerShutdown:
    def test_wedged_worker_close_honours_grace_deadline(self):
        grid = make_grid()
        plan = FaultPlan((FaultSpec("wedge", op="stats", seconds=30.0),))
        w = ShardWorker(0, grid, "epanechnikov", fault_plan=plan)
        try:
            w.send_op("stats")
            with pytest.raises(ShardTimeout, match="wedged"):
                w.recv_reply("stats", timeout=0.3)
            t0 = time.perf_counter()
            w.close(grace=0.5)
            elapsed = time.perf_counter() - t0
            assert elapsed < 5.0  # grace + terminate, never the 30s sleep
            assert not w._proc.is_alive()
        finally:
            w.close()  # idempotent

    def test_send_after_close_is_typed_and_nonretryable(self):
        grid = make_grid()
        w = ShardWorker(0, grid, "epanechnikov")
        w.close()
        with pytest.raises(ShardFailed, match="closed") as ei:
            w.send_op("stats")
        assert not ei.value.retryable


# ---------------------------------------------------------------------------
# Frontend fault handling: typed fan-out, retry-once, circuit breaker
# ---------------------------------------------------------------------------
def _grid_fe():
    return GridSpec(DomainSpec.from_voxels(20, 20, 30), hs=2.5, ht=2.0)


def _points_fe(grid, n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.uniform(
        0, [grid.domain.gx, grid.domain.gy, grid.domain.gt], size=(n, 3)
    )


class TestFrontendFaults:
    def test_retryable_fault_retries_once_and_succeeds(self):
        grid = _grid_fe()
        svc = DensityService(
            PointSet(_points_fe(grid, 800)), grid, backend="direct"
        )
        real = svc.query_points
        calls = {"n": 0}

        def flaky(*a, **k):
            calls["n"] += 1
            if calls["n"] == 1:
                raise ShardFailed(1, "query_points", "worker died")
            return real(*a, **k)

        svc.query_points = flaky
        qs = _points_fe(grid, 6, seed=1)

        async def main():
            async with TrafficFrontend(svc) as fe:
                outs = await asyncio.gather(
                    *[fe.query_point(*q) for q in qs]
                )
                return outs, fe.frontend_stats()

        outs, blob = run_async(main())
        assert all(isinstance(o, float) for o in outs)
        np.testing.assert_allclose(outs, real(qs), rtol=1e-9, atol=1e-12)
        assert blob["retries"] == 1
        assert svc.counter.requests_retried == 1
        # The fault also opened shard 1's breaker.
        assert calls["n"] == 2

    def test_nonretryable_fault_fans_out_typed_error(self):
        grid = _grid_fe()
        svc = DensityService(PointSet(_points_fe(grid, 400)), grid)

        def down(*a, **k):
            raise ShardDown(0, "query_points")

        svc.query_points = down

        async def main():
            async with TrafficFrontend(svc) as fe:
                results = await asyncio.gather(
                    fe.query_point(1.0, 1.0, 1.0),
                    fe.query_point(2.0, 2.0, 2.0),
                    return_exceptions=True,
                )
                return results, fe.frontend_stats()

        results, blob = run_async(main())
        # Every coalesced waiter sees the same typed error — no
        # cancellations, no bare RuntimeError.
        assert all(isinstance(r, ShardDown) for r in results)
        assert blob["retries"] == 0

    def test_breaker_sheds_with_circuit_open_then_recovers(self):
        grid = _grid_fe()
        svc = DensityService(
            PointSet(_points_fe(grid, 400)), grid, backend="direct"
        )
        real = svc.query_points

        def dead(*a, **k):
            raise ShardFailed(2, "query_points", "down", retryable=False)

        svc.query_points = dead

        async def main():
            async with TrafficFrontend(
                svc, breaker_cooldown_ms=150.0
            ) as fe:
                with pytest.raises(ShardFailed):
                    await fe.query_point(1.0, 1.0, 1.0)
                # Breaker open: new traffic is shed, typed.
                with pytest.raises(CircuitOpen) as ei:
                    await fe.query_point(1.0, 1.0, 1.0)
                assert ei.value.shard_ids == (2,)
                assert ei.value.retry_after_s <= 0.151
                open_now = fe.frontend_stats()["open_breakers"]
                svc.query_points = real
                await asyncio.sleep(0.2)  # cooldown lapses
                out = await fe.query_point(1.0, 1.0, 1.0)
                return open_now, out, fe.frontend_stats()

        open_now, out, blob = run_async(main())
        assert open_now == [2]
        assert isinstance(out, float) and np.isfinite(out)
        assert blob["open_breakers"] == []
        assert blob["shed"] >= 1  # the CircuitOpen counted as shed

    def test_breaker_defer_waits_out_the_cooldown(self):
        grid = _grid_fe()
        svc = DensityService(
            PointSet(_points_fe(grid, 400)), grid, backend="direct"
        )
        real = svc.query_points

        def dead(*a, **k):
            raise ShardFailed(0, "query_points", "down", retryable=False)

        svc.query_points = dead

        async def main():
            async with TrafficFrontend(
                svc, overload="defer", breaker_cooldown_ms=120.0
            ) as fe:
                with pytest.raises(ShardFailed):
                    await fe.query_point(1.0, 1.0, 1.0)
                svc.query_points = real
                t0 = fe._loop.time()
                out = await fe.query_point(1.0, 1.0, 1.0)
                waited = fe._loop.time() - t0
                return out, waited, fe.frontend_stats()

        out, waited, blob = run_async(main())
        assert isinstance(out, float) and np.isfinite(out)
        assert waited >= 0.1  # deferred through the cooldown, not shed
        assert blob["shed"] == 0

    def test_mutations_never_retry(self):
        grid = _grid_fe()
        inc = IncrementalSTKDE(grid)
        inc.add(_points_fe(grid, 200))
        svc = DensityService(inc, backend="direct")
        calls = {"n": 0}

        def failing_mutation():
            calls["n"] += 1
            raise ShardFailed(0, "slide", "worker died")  # retryable

        async def main():
            async with TrafficFrontend(svc) as fe:
                with pytest.raises(ShardFailed):
                    await fe.mutate(failing_mutation)
                return fe.frontend_stats()

        blob = run_async(main())
        assert calls["n"] == 1  # surfaced immediately: no double-apply
        assert blob["retries"] == 0

    def test_generic_exceptions_bypass_retry_and_breaker(self):
        grid = _grid_fe()
        svc = DensityService(PointSet(_points_fe(grid, 400)), grid)

        def boom(*a, **k):
            raise RuntimeError("engine exploded")

        svc.query_points = boom

        async def main():
            async with TrafficFrontend(svc) as fe:
                with pytest.raises(RuntimeError, match="exploded"):
                    await fe.query_point(1.0, 1.0, 1.0)
                # Not a ServeError: no breaker opened, next call admits.
                with pytest.raises(RuntimeError, match="exploded"):
                    await fe.query_point(1.0, 1.0, 1.0)
                return fe.frontend_stats()

        blob = run_async(main())
        assert blob["retries"] == 0
        assert blob["open_breakers"] == []


def run_async(coro):
    return asyncio.run(coro)
