"""Planner tests: backend agreement and the direct-vs-lookup crossover.

Uses a pinned :class:`MachineModel` (no calibration) so the decisions are
deterministic: the planner must send sparse/few-query batches to the
index walk and dense/many-query batches to volume materialisation +
lookup, and both physical plans must agree numerically where they are
both exact (voxel centers).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.model import CostModel, MachineModel
from repro.core import PointSet
from repro.core.grid import VoxelWindow
from repro.serve import BucketIndex, DensityService, QueryPlanner
from tests.helpers import make_clustered_points, make_points
from tests.serve.test_engine import voxel_center_queries

#: Deterministic machine: memory fast, per-batch dispatch expensive enough
#: that materialisation needs a real batch to amortise.
MACHINE = MachineModel(
    c_mem=1e-9, c_point=1e-7, c_cell=2e-9, c_batch=1e-5,
    c_pair=2e-9, c_tile=1e-6, c_lookup=5e-8, c_qgroup=5e-6,
    c_qcohort=5e-6, c_qprobe=1e-6,
)


@pytest.fixture
def sparse_setup(small_grid):
    pts = make_points(small_grid, 60, seed=30)
    model = CostModel(small_grid, pts, MACHINE)
    return pts, BucketIndex(small_grid, pts.coords), QueryPlanner(model)


@pytest.fixture
def dense_setup(small_grid):
    pts = make_clustered_points(small_grid, 4000, seed=31)
    model = CostModel(small_grid, pts, MACHINE)
    return pts, BucketIndex(small_grid, pts.coords), QueryPlanner(model)


class TestPointCrossover:
    def test_few_queries_on_sparse_data_go_direct(self, sparse_setup, small_grid):
        _, idx, planner = sparse_setup
        q = make_points(small_grid, 5, seed=32).coords
        plan = planner.plan_points(idx, q, volume_ready=False)
        assert plan.backend == "direct"
        assert plan.direct_seconds < plan.lookup_seconds

    def test_many_queries_on_dense_data_go_lookup(self, dense_setup, small_grid):
        _, idx, planner = dense_setup
        q = make_points(small_grid, 20_000, seed=33).coords
        plan = planner.plan_points(idx, q, volume_ready=False)
        assert plan.backend == "lookup"
        assert plan.lookup_seconds < plan.direct_seconds

    def test_warm_volume_flips_small_batches_to_lookup(self, dense_setup, small_grid):
        """Once materialised, per-query lookup undercuts even tiny walks
        on dense data (each direct query touches hundreds of pairs)."""
        _, idx, planner = dense_setup
        q = make_points(small_grid, 50, seed=34).coords
        cold = planner.plan_points(idx, q, volume_ready=False)
        warm = planner.plan_points(idx, q, volume_ready=True)
        assert cold.backend == "direct"
        assert warm.backend == "lookup"

    def test_estimates_scale_with_batch(self, sparse_setup, small_grid):
        _, idx, planner = sparse_setup
        small = planner.plan_points(
            idx, make_points(small_grid, 10, seed=35).coords, volume_ready=False
        )
        big = planner.plan_points(
            idx, make_points(small_grid, 1000, seed=35).coords, volume_ready=False
        )
        assert big.direct_seconds > small.direct_seconds
        assert big.est_candidates > small.est_candidates

    def test_force_overrides_but_reports(self, sparse_setup, small_grid):
        _, idx, planner = sparse_setup
        q = make_points(small_grid, 5, seed=36).coords
        plan = planner.plan_points(idx, q, volume_ready=False, force="lookup")
        assert plan.backend == "lookup"
        assert "forced" in plan.reason
        assert plan.direct_seconds < plan.lookup_seconds  # honest estimates
        with pytest.raises(ValueError, match="backend"):
            planner.plan_points(idx, q, volume_ready=False, force="magic")


class TestRegionCrossover:
    def test_small_region_cold_volume_goes_direct(self, sparse_setup, small_grid):
        _, _, planner = sparse_setup
        plan = planner.plan_region(
            VoxelWindow(0, 4, 0, 4, 0, 4), volume_ready=False
        )
        assert plan.backend == "direct"

    def test_any_region_warm_volume_goes_lookup(self, dense_setup, small_grid):
        _, _, planner = dense_setup
        plan = planner.plan_region(
            small_grid.full_window(), volume_ready=True
        )
        assert plan.backend == "lookup"

    def test_full_region_cold_estimates_comparable(self, dense_setup, small_grid):
        """A cold full-window extract *is* (a window of) a materialisation:
        the two estimates must track each other.  The lookup side prices
        the build the service would run (threaded on multi-core hosts),
        so compare against the model's own materialisation estimate."""
        _, _, planner = dense_setup
        model = planner.model
        plan = planner.plan_region(
            small_grid.full_window(), volume_ready=False
        )
        assert plan.lookup_seconds == pytest.approx(
            model.predict_materialize() + model.lookup_cost
        )
        # The direct estimate is a serial stamp of the same window: it
        # must track serial materialisation within a small factor.
        serial = model.predict_pb_sym()
        assert plan.direct_seconds < 2.5 * serial
        assert serial < 2.5 * plan.direct_seconds


class TestBackendAgreement:
    def test_backends_agree_on_random_voxel_center_batches(self, small_grid):
        """Satellite acceptance: direct-sum and volume-lookup agree to
        rtol=1e-6 on random query batches (voxel centers, where both are
        exact)."""
        pts = make_clustered_points(small_grid, 150, seed=37)
        svc = DensityService(pts, small_grid, machine=MACHINE)
        rng = np.random.default_rng(38)
        q_all, _ = voxel_center_queries(small_grid, stride=1)
        for _ in range(3):
            q = q_all[rng.choice(q_all.shape[0], size=200, replace=False)]
            d = svc.query_points(q, backend="direct")
            l = svc.query_points(q, backend="lookup")
            np.testing.assert_allclose(d, l, rtol=1e-6, atol=1e-15)

    def test_backends_close_off_center(self, small_grid):
        """Off the lattice, lookup is an interpolation of the exact direct
        answer: bounded by the field's scale, not equal."""
        pts = make_clustered_points(small_grid, 150, seed=39)
        svc = DensityService(pts, small_grid, machine=MACHINE)
        rng = np.random.default_rng(40)
        d = small_grid.domain
        q = rng.uniform([d.x0, d.y0, d.t0],
                        [d.x0 + d.gx, d.y0 + d.gy, d.t0 + d.gt], size=(300, 3))
        exact = svc.query_points(q, backend="direct")
        approx = svc.query_points(q, backend="lookup")
        scale = exact.max()
        assert scale > 0
        assert np.max(np.abs(exact - approx)) < 0.2 * scale


class TestCostModelPredictors:
    def test_direct_query_prices_pairs_and_dispatch(self, small_grid):
        pts = make_points(small_grid, 50, seed=41)
        model = CostModel(small_grid, pts, MACHINE)
        base = model.predict_direct_query(0, 0)
        assert base == pytest.approx(MACHINE.c_batch)
        # Fully scattered default: one cohort and one probe per query.
        assert model.predict_direct_query(10, 500) == pytest.approx(
            MACHINE.c_batch
            + 10 * (MACHINE.c_qcohort + MACHINE.c_qprobe + MACHINE.c_point)
            + 500 * MACHINE.c_pair
        )
        # Cohorts collapse the dispatch; segments multiply the probes.
        assert model.predict_direct_query(
            10, 500, n_groups=4, n_cohorts=2, n_segments=3
        ) == pytest.approx(
            MACHINE.c_batch + 2 * MACHINE.c_qcohort
            + 4 * 3 * MACHINE.c_qprobe + 10 * MACHINE.c_point
            + 500 * MACHINE.c_pair
        )
        # The legacy per-group walk still prices its c_qgroup dispatch.
        assert model.predict_grouped_query(10, 500, n_groups=2) == pytest.approx(
            MACHINE.c_batch + 2 * MACHINE.c_qgroup + 10 * MACHINE.c_point
            + 500 * MACHINE.c_pair
        )

    def test_lookup_charges_build_only_when_cold(self, small_grid):
        pts = make_points(small_grid, 50, seed=42)
        model = CostModel(small_grid, pts, MACHINE)
        cold = model.predict_volume_lookup(100, volume_ready=False)
        warm = model.predict_volume_lookup(100, volume_ready=True)
        # The cold build is the one the service would run: serial, or the
        # threaded bbox-shard path when that is predicted to win.
        assert cold == pytest.approx(
            model.predict_materialize() + 100 * MACHINE.c_lookup
        )
        assert model.predict_materialize() <= model.predict_pb_sym()
        assert warm == pytest.approx(100 * MACHINE.c_lookup)

    def test_direct_region_charges_reaching_stamps_only(self, small_grid):
        """A window far from every event prices (almost) only its first
        touch; a window over the data prices the stamps it absorbs."""
        rng = np.random.default_rng(43)
        coords = rng.uniform([0, 0, 0], [3.0, 3.0, 3.0], size=(50, 3))
        model = CostModel(small_grid, PointSet(coords), MACHINE)
        near = model.predict_direct_region(VoxelWindow(0, 6, 0, 6, 0, 6))
        far_w = VoxelWindow(
            small_grid.Gx - 2, small_grid.Gx,
            small_grid.Gy - 2, small_grid.Gy,
            small_grid.Gt - 2, small_grid.Gt,
        )
        far = model.predict_direct_region(far_w)
        assert far == pytest.approx(
            MACHINE.c_mem * far_w.volume + MACHINE.c_batch
        )
        assert near > far

    def test_uncalibrated_lookup_rate_falls_back(self, small_grid):
        machine = MachineModel(c_mem=1e-9, c_point=1e-7, c_cell=2e-9)
        model = CostModel(small_grid, make_points(small_grid, 10, seed=44),
                          machine)
        assert model.lookup_cost == pytest.approx(32e-9)
