"""Tests for the LRU query cache and the DensityService facade.

The acceptance-critical properties live here: the cache invalidates on
``slide_window`` (version-keyed entries are dropped and fresh answers
match a from-scratch recomputation), and the service answers point /
slice / region queries with both backends.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.pb_sym import pb_sym
from repro.analysis.model import MachineModel
from repro.core import PointSet
from repro.core.incremental import IncrementalSTKDE
from repro.serve import DensityService, QueryCache
from tests.helpers import make_clustered_points, make_points
from tests.serve.test_engine import voxel_center_queries

MACHINE = MachineModel(
    c_mem=1e-9, c_point=1e-7, c_cell=2e-9, c_batch=1e-5,
    c_pair=2e-9, c_tile=1e-6, c_lookup=5e-8,
)


class TestQueryCache:
    def test_put_get_roundtrip(self):
        c = QueryCache(max_entries=4)
        key = QueryCache.make_key(0, "points", "direct", "abc")
        assert c.get(key) is None
        assert c.put(key, np.arange(3), 24)
        got = c.get(key)
        np.testing.assert_array_equal(got, np.arange(3))
        assert c.hits == 1 and c.misses == 1

    def test_lru_eviction_order(self):
        c = QueryCache(max_entries=2)
        c.put(("a",), 1)
        c.put(("b",), 2)
        c.get(("a",))  # refresh a: b becomes LRU
        c.put(("c",), 3)
        assert c.get(("b",)) is None
        assert c.get(("a",)) == 1
        assert c.evictions == 1

    def test_byte_ceiling_evicts_and_rejects(self):
        c = QueryCache(max_entries=10, max_bytes=100)
        assert c.put(("a",), "x", 60)
        assert c.put(("b",), "y", 60)  # evicts a to fit
        assert c.get(("a",)) is None
        assert c.total_bytes == 60
        assert not c.put(("huge",), "z", 1000)  # never fits: not cached
        assert len(c) == 1

    def test_drop_stale_versions(self):
        c = QueryCache()
        c.put(QueryCache.make_key(0, "points", "k1"), 1)
        c.put(QueryCache.make_key(0, "region", "k2"), 2)
        c.put(QueryCache.make_key(1, "points", "k1"), 3)
        assert c.drop_stale(1) == 2
        assert c.get(QueryCache.make_key(1, "points", "k1")) == 3
        assert c.get(QueryCache.make_key(0, "points", "k1")) is None
        assert c.invalidations == 2

    def test_replace_updates_bytes(self):
        c = QueryCache(max_bytes=100)
        c.put(("a",), 1, 40)
        c.put(("a",), 2, 70)
        assert c.total_bytes == 70
        assert c.get(("a",)) == 2

    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            QueryCache(max_entries=0)


class TestServiceStatic:
    def test_repeat_point_query_hits_cache(self, small_grid):
        pts = make_points(small_grid, 80, seed=50)
        svc = DensityService(pts, small_grid, machine=MACHINE)
        q = pts.coords[:10]
        a = svc.query_points(q, backend="direct")
        b = svc.query_points(q, backend="direct")
        assert svc.cache.hits == 1
        np.testing.assert_array_equal(a, b)
        assert svc.stats()["backend_calls"]["direct"] == 1  # computed once

    def test_slice_and_region_both_backends(self, small_grid):
        pts = make_clustered_points(small_grid, 100, seed=51)
        svc = DensityService(pts, small_grid, machine=MACHINE)
        ref = pb_sym(pts, small_grid)
        for backend in ("direct", "lookup"):
            s = svc.query_slice(4, backend=backend)
            np.testing.assert_allclose(
                s.time_slice(), ref.data[:, :, 4], rtol=1e-6, atol=1e-18
            )
            r = svc.query_region((1, 7, 2, 9, 3, 10), backend=backend)
            np.testing.assert_allclose(
                r.data, ref.data[1:7, 2:9, 3:10], rtol=1e-6, atol=1e-18
            )

    def test_lookup_slice_is_view_of_materialised_volume(self, small_grid):
        pts = make_points(small_grid, 50, seed=52)
        svc = DensityService(pts, small_grid, machine=MACHINE)
        s = svc.query_slice(3, backend="lookup")
        assert s.is_view
        assert s.data.base is svc.materialize().data
        assert svc.stats()["volume_builds"] == 1  # one build serves both

    def test_static_requires_grid(self, small_grid):
        pts = make_points(small_grid, 10, seed=53)
        with pytest.raises(ValueError, match="grid"):
            DensityService(pts)

    def test_rejects_unknown_backend(self, small_grid):
        pts = make_points(small_grid, 10, seed=54)
        with pytest.raises(ValueError, match="backend"):
            DensityService(pts, small_grid, backend="warp")
        svc = DensityService(pts, small_grid, machine=MACHINE)
        with pytest.raises(ValueError, match="backend"):
            svc.query_points(pts.coords[:2], backend="warp")

    def test_empty_source_serves_zeros(self, small_grid):
        svc = DensityService(PointSet(np.empty((0, 3))), small_grid,
                             machine=MACHINE)
        out = svc.query_points(np.array([[1.0, 1.0, 1.0]]), backend="direct")
        np.testing.assert_array_equal(out, [0.0])
        s = svc.query_slice(0, backend="lookup")
        assert not s.data.any()

    def test_results_are_read_only(self, small_grid):
        pts = make_points(small_grid, 30, seed=55)
        svc = DensityService(pts, small_grid, machine=MACHINE)
        out = svc.query_points(pts.coords[:3], backend="direct")
        with pytest.raises(ValueError):
            out[0] = 1.0
        reg = svc.query_region((0, 4, 0, 4, 0, 4), backend="lookup")
        with pytest.raises(ValueError):
            reg.data[0, 0, 0] = 1.0


class TestServiceWeighted:
    def test_weighted_served_by_both_backends(self, small_grid):
        """The weighted stamp mode opens the volume backends: lookup
        point queries, slices, and regions all honour the weights."""
        pts = make_points(small_grid, 40, seed=56)
        w = np.linspace(0.5, 2.0, 40)
        svc = DensityService(PointSet(pts.coords, w), small_grid,
                             machine=MACHINE)
        q, vox = voxel_center_queries(small_grid)
        direct = svc.query_points(q, backend="direct")
        lookup = svc.query_points(q, backend="lookup")
        # Both are exact at voxel centers.
        np.testing.assert_allclose(lookup, direct, rtol=1e-6, atol=1e-18)
        vol = svc.materialize()
        np.testing.assert_allclose(
            direct, vol.data[vox[:, 0], vox[:, 1], vox[:, 2]],
            rtol=1e-6, atol=1e-18,
        )
        for backend in ("direct", "lookup"):
            s = svc.query_slice(4, backend=backend)
            np.testing.assert_allclose(
                s.time_slice(), vol.data[:, :, 4], rtol=1e-6, atol=1e-18
            )

    def test_weighted_volume_is_weighted_estimator(self, small_grid):
        """The materialised volume of a weighted set equals the weighted
        sum of per-event stamps over total weight (brute force)."""
        pts = make_points(small_grid, 25, seed=60)
        w = np.linspace(0.2, 3.0, 25)
        svc = DensityService(PointSet(pts.coords, w), small_grid,
                             machine=MACHINE)
        vol = svc.materialize().data
        from repro.core.stamping import stamp_batch

        brute = small_grid.allocate()
        for i in range(25):
            one = np.zeros(small_grid.shape)
            stamp_batch(one, small_grid, svc.kernel, pts.coords[i : i + 1], 1.0)
            brute += w[i] * one
        brute /= w.sum() * small_grid.hs ** 2 * small_grid.ht
        np.testing.assert_allclose(vol, brute, rtol=1e-12, atol=1e-18)

    def test_uniform_weights_match_unweighted(self, small_grid):
        pts = make_points(small_grid, 40, seed=57)
        weighted = DensityService(
            PointSet(pts.coords, np.full(40, 2.0)), small_grid, machine=MACHINE
        )
        plain = DensityService(pts, small_grid, machine=MACHINE)
        q = pts.coords[:8]
        # Constant weights cancel in the normalised estimator.
        np.testing.assert_allclose(
            weighted.query_points(q),
            plain.query_points(q, backend="direct"),
            rtol=1e-12,
        )


class TestServiceLive:
    def make_live(self, grid, n=120):
        pts = make_clustered_points(grid, n, seed=58)
        inc = IncrementalSTKDE(grid)
        inc.add(pts.coords)
        return pts, inc, DensityService(inc, machine=MACHINE)

    def test_live_matches_batch(self, small_grid):
        pts, _, svc = self.make_live(small_grid)
        ref = pb_sym(pts, small_grid)
        q, vox = voxel_center_queries(small_grid)
        for backend in ("direct", "lookup"):
            out = svc.query_points(q, backend=backend)
            np.testing.assert_allclose(
                out, ref.data[vox[:, 0], vox[:, 1], vox[:, 2]],
                rtol=1e-6, atol=1e-15,
            )

    def test_slide_window_invalidates_and_reanswers(self, small_grid):
        """Acceptance: cache invalidates on slide_window, and post-slide
        answers match a from-scratch estimate of the new window."""
        pts, inc, svc = self.make_live(small_grid)
        q, vox = voxel_center_queries(small_grid)
        before = svc.query_points(q, backend="direct")
        svc.query_points(q, backend="direct")
        assert svc.cache.hits == 1
        entries_before = len(svc.cache)
        assert entries_before > 0

        horizon = float(np.median(pts.coords[:, 2]))
        fresh = make_points(small_grid, 40, seed=59).coords
        inc.slide_window(PointSet(fresh), t_horizon=horizon)

        after = svc.query_points(q, backend="direct")
        assert svc.cache.invalidations >= entries_before  # stale dropped
        live = np.vstack([pts.coords[pts.coords[:, 2] >= horizon], fresh])
        ref = pb_sym(PointSet(live), small_grid)
        np.testing.assert_allclose(
            after, ref.data[vox[:, 0], vox[:, 1], vox[:, 2]],
            rtol=1e-6, atol=1e-15,
        )
        assert not np.allclose(after, before)  # the window really moved

    def test_volume_rebuilt_after_slide(self, small_grid):
        pts, inc, svc = self.make_live(small_grid)
        assert not svc.volume_ready
        svc.query_slice(2, backend="lookup")
        assert svc.volume_ready
        horizon = float(np.median(pts.coords[:, 2]))
        assert inc.slide_window(np.empty((0, 3)), t_horizon=horizon) > 0
        assert not svc.volume_ready  # dropped on version change
        svc.query_slice(2, backend="lookup")
        assert svc.stats()["volume_builds"] == 2

    def test_quiet_slide_keeps_caches_warm(self, small_grid):
        """A tick that retires and adds nothing must not invalidate: the
        dashboard keeps its volume, index, and cache entries."""
        pts, inc, svc = self.make_live(small_grid)
        svc.query_slice(2, backend="lookup")
        v = svc.version
        assert inc.slide_window(
            np.empty((0, 3)), t_horizon=float("-inf")
        ) == 0
        assert svc.version == v
        assert svc.volume_ready
        svc.query_slice(2, backend="lookup")
        assert svc.cache.hits == 1
        assert svc.stats()["volume_builds"] == 1

    def test_cache_hit_skips_planning(self, small_grid):
        """Auto-mode repeats must not pay the planner: a warm hit works
        even with a machine model that was never calibrated (planner
        construction would need one)."""
        pts = make_clustered_points(small_grid, 60, seed=61)
        svc = DensityService(pts, small_grid, machine=MACHINE)
        q = pts.coords[:6]
        first = svc.query_points(q)  # auto: plans, computes, caches
        planner = svc._planner
        svc._planner = None  # a second plan would rebuild this
        again = svc.query_points(q)
        np.testing.assert_array_equal(first, again)
        assert svc._planner is None  # hit never touched the planner
        svc._planner = planner

    def test_off_domain_queries_agree_across_backends(self, small_grid):
        """Outside the domain box the lookup backend routes through the
        index, so a sentinel cannot flip answers with the plan."""
        pts = make_clustered_points(small_grid, 80, seed=62)
        svc = DensityService(pts, small_grid, machine=MACHINE)
        d = small_grid.domain
        q = np.array([
            [d.x0 + d.gx + 0.5 * small_grid.hs, d.y0 + 1.0, d.t0 + 1.0],
            [d.x0 - 100.0, d.y0 - 100.0, d.t0 - 100.0],
            [d.x0 + 1.0, d.y0 + 1.0, d.t0 + 1.0],  # inside, still lookup
        ])
        direct = svc.query_points(q, backend="direct")
        lookup = svc.query_points(q, backend="lookup")
        np.testing.assert_allclose(lookup[:2], direct[:2], rtol=1e-12)
        assert lookup[1] == 0.0  # far outside: true zero, not a plateau

    def test_backends_agree_after_remove(self, small_grid):
        """Regression: remove() untracks events, so the direct backend's
        index (rebuilt from live_coords) matches the volume backend."""
        pts, inc, svc = self.make_live(small_grid)
        inc.remove(pts.coords[:40])
        q, vox = voxel_center_queries(small_grid)
        d = svc.query_points(q, backend="direct")
        l = svc.query_points(q, backend="lookup")
        np.testing.assert_allclose(d, l, rtol=1e-6, atol=1e-12)
        ref = pb_sym(PointSet(pts.coords[40:]), small_grid)
        np.testing.assert_allclose(
            d, ref.data[vox[:, 0], vox[:, 1], vox[:, 2]],
            rtol=1e-6, atol=1e-12,
        )

    def test_kernel_mismatch_rejected(self, small_grid):
        inc = IncrementalSTKDE(small_grid, kernel="quartic")
        with pytest.raises(ValueError, match="kernel"):
            DensityService(inc, kernel="epanechnikov")

    def test_stats_shape(self, small_grid):
        _, _, svc = self.make_live(small_grid)
        svc.query_points(np.array([[1.0, 1.0, 1.0]]), backend="direct")
        stats = svc.stats()
        assert stats["events"] == 120
        assert stats["backend_calls"]["direct"] == 1
        assert set(stats["cache"]) == {
            "entries", "bytes", "hits", "misses", "evictions", "invalidations"
        }
        assert stats["index"]["segments"] == 1
        assert stats["cache_hit_ratio"] == 0.0

    def test_slide_syncs_index_incrementally(self, small_grid):
        """Tentpole acceptance: across a slide the service keeps the
        index warm — only the arriving batch is re-bucketed, surviving
        batches keep their segments."""
        pts, inc, svc = self.make_live(small_grid)
        idx_before = svc.index()
        assert svc.counter.index_events_bucketed == 120
        # Horizon below every event: nothing retires, batches survive.
        fresh = make_points(small_grid, 25, seed=63).coords
        inc.slide_window(PointSet(fresh), t_horizon=-1.0)
        idx_after = svc.index()
        assert idx_after is idx_before  # same object, synced in place
        assert idx_after.segment_count == 2
        assert svc.counter.index_events_bucketed == 145  # +batch, not +n
        # A full retirement drops exactly the expired segments.
        inc.slide_window(np.empty((0, 3)), t_horizon=float("inf"))
        assert svc.index() is idx_before
        assert svc.index().n == 0
        assert svc.counter.index_events_bucketed == 145  # retire buckets nothing

    def test_incremental_index_answers_match_rebuild(self, small_grid):
        """Randomized slide sequence: the warm index's answers equal a
        cold service's at every step."""
        rng = np.random.default_rng(64)
        pts, inc, svc = self.make_live(small_grid)
        q, _ = voxel_center_queries(small_grid)
        for step in range(4):
            horizon = float(np.quantile(inc.live_coords[:, 2], 0.3)) if inc.n else 0.0
            fresh = make_points(small_grid, int(rng.integers(10, 40)),
                                seed=65 + step).coords
            inc.slide_window(PointSet(fresh), t_horizon=horizon)
            warm = svc.query_points(q, backend="direct")
            cold = DensityService(
                PointSet(inc.live_coords), small_grid, machine=MACHINE
            ).query_points(q, backend="direct")
            np.testing.assert_allclose(warm, cold, rtol=1e-12, atol=1e-18)
            assert svc.index().segment_count == len(inc.live_batches)


class TestThreadedMaterialize:
    @staticmethod
    def _long_grid_points(n=600, seed=66):
        """An x-elongated instance whose origin-ordered shards have thin,
        near-disjoint bounding boxes — the geometry the threaded build's
        memory cap admits."""
        from repro.core import DomainSpec, GridSpec

        grid = GridSpec(DomainSpec.from_voxels(120, 10, 10), hs=1.0, ht=1.0)
        rng = np.random.default_rng(seed)
        coords = np.column_stack([
            rng.uniform(0, 120, n), rng.uniform(0, 10, n), rng.uniform(0, 10, n)
        ])
        return grid, PointSet(coords)

    def test_threaded_build_when_predicted_to_win(self, monkeypatch):
        """On a multi-core host the service routes big static builds
        through the bbox-sharded threads path; the volume is unchanged."""
        import repro.serve.service as service_mod

        grid, pts = self._long_grid_points()
        ref = DensityService(pts, grid, machine=MACHINE).materialize()
        monkeypatch.setattr(
            service_mod, "resolve_shard_count", lambda P: 4
        )
        svc = DensityService(pts, grid, machine=MACHINE)
        vol = svc.materialize()
        np.testing.assert_allclose(vol.data, ref.data, rtol=1e-12, atol=1e-18)
        stats = svc.stats()
        # The pinned machine makes compute dominate, so threads predict a
        # win and the build is recorded as threaded.
        assert stats["volume_build_backend"] == "threads[4]"

    def test_memory_cap_refuses_grid_wide_shards(self, small_domain, monkeypatch):
        """When every stamp covers the whole grid, each shard bbox is the
        full volume: the buffer cap refuses the threaded build and the
        service stays serial rather than allocating ~P volumes."""
        from repro.core import GridSpec
        import repro.serve.service as service_mod

        grid = GridSpec(small_domain, hs=30.0, ht=30.0)  # grid-wide stamps
        monkeypatch.setattr(service_mod, "resolve_shard_count", lambda P: 4)
        pts = make_points(grid, 400, seed=66)
        svc = DensityService(pts, grid, machine=MACHINE)
        svc.materialize()
        assert svc.stats()["volume_build_backend"] == "stamp"

    def test_serial_build_on_single_core(self, small_grid, monkeypatch):
        import repro.serve.service as service_mod

        monkeypatch.setattr(service_mod, "resolve_shard_count", lambda P: 1)
        pts = make_points(small_grid, 50, seed=67)
        svc = DensityService(pts, small_grid, machine=MACHINE)
        svc.materialize()
        assert svc.stats()["volume_build_backend"] == "stamp"
