"""Per-backend cost routing and calibration persistence.

The planner's ``compute="auto"`` arm prices the kernel-summing plans at
every registered backend's calibrated unit costs (``c_pair``,
``c_qcohort``, ``c_qsample`` keyed per backend on the
:class:`~repro.analysis.model.MachineModel`) and routes each batch to
the cheapest — with the default backend winning ties, so an
*uncalibrated* machine never routes away from the bit-exact reference.
These tests pin both behaviours on hand-built machines, the JSON
persistence round-trip behind ``--calibration-file`` /
``REPRO_CALIBRATION``, and the serving-layer observability blob.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.model import CostModel, MachineModel
from repro.core import PointSet
from repro.core.backends import DEFAULT_BACKEND, available_backends
from repro.serve import BucketIndex, DensityService, QueryPlanner
from repro.serve.calibrate import CALIBRATION_ENV, resolve_machine_model
from tests.helpers import make_clustered_points, make_points

#: Flat scalars only — an *uncalibrated* machine (no backend_costs).
NOMINAL = MachineModel(
    c_mem=1e-9, c_point=1e-7, c_cell=2e-9, c_batch=1e-5,
    c_pair=2e-9, c_tile=1e-6, c_lookup=5e-8, c_qgroup=5e-6,
    c_qcohort=5e-6, c_qprobe=1e-6,
)

#: The same machine after a (synthetic) calibration that measured the
#: fused backend's pair loop 4x cheaper than the reference's.
CALIBRATED = NOMINAL.with_backend_costs({
    "numpy-ref": {"c_pair": 2e-9, "c_qcohort": 5e-6},
    "numpy-fused": {"c_pair": 5e-10, "c_qcohort": 1.25e-6},
})


@pytest.fixture
def dense_setup(small_grid):
    pts = make_clustered_points(small_grid, 4000, seed=61)
    idx = BucketIndex(small_grid, pts.coords)
    q = make_points(small_grid, 50, seed=62).coords

    def planner(machine):
        return QueryPlanner(CostModel(small_grid, pts, machine))

    return idx, q, planner


class TestBackendCostAccessors:
    def test_flat_scalars_serve_every_backend(self):
        for name in ("numpy-ref", "numpy-fused", "numba"):
            assert NOMINAL.backend_cost("c_pair", name) == NOMINAL.c_pair

    def test_calibrated_entry_overrides_scalar(self):
        assert CALIBRATED.backend_cost("c_pair", "numpy-fused") == 5e-10
        assert CALIBRATED.backend_cost("c_pair", "numpy-ref") == 2e-9
        # Unprobed backends fall back to the flat scalar.
        assert CALIBRATED.backend_cost("c_pair", "numba") == NOMINAL.c_pair

    def test_probed_backends_sorted(self):
        assert CALIBRATED.probed_backends() == ("numpy-fused", "numpy-ref")
        assert NOMINAL.probed_backends() == ()


class TestAutoRouting:
    def test_uncalibrated_machine_stays_on_reference(self, dense_setup):
        idx, q, planner = dense_setup
        plan = planner(NOMINAL).plan_points(
            idx, q, volume_ready=False, compute="auto"
        )
        # Every backend prices identically on flat scalars: the default
        # must win the tie, keeping defaults bit-identical.
        assert plan.compute == DEFAULT_BACKEND

    def test_calibrated_machine_routes_to_cheapest(self, dense_setup):
        idx, q, planner = dense_setup
        plan = planner(CALIBRATED).plan_points(
            idx, q, volume_ready=False, compute="auto"
        )
        assert plan.compute == "numpy-fused"
        # The reported price is the chosen backend's, not the default's.
        nominal = planner(NOMINAL).plan_points(
            idx, q, volume_ready=False, compute="auto"
        )
        assert plan.direct_seconds < nominal.direct_seconds

    def test_pinned_compute_skips_the_argmin(self, dense_setup):
        idx, q, planner = dense_setup
        plan = planner(CALIBRATED).plan_points(
            idx, q, volume_ready=False, compute="numpy-ref"
        )
        assert plan.compute == "numpy-ref"

    def test_default_request_keeps_default_backend(self, dense_setup):
        idx, q, planner = dense_setup
        plan = planner(CALIBRATED).plan_points(idx, q, volume_ready=False)
        assert plan.compute == DEFAULT_BACKEND

    def test_auto_routing_survives_approx_arm(self, dense_setup):
        idx, q, planner = dense_setup
        plan = planner(CALIBRATED).plan_points(
            idx, q, volume_ready=False, compute="auto", eps=0.2
        )
        assert plan.compute == "numpy-fused"
        assert np.isfinite(plan.approx_seconds)


class TestCalibrationPersistence:
    def test_json_round_trip(self):
        clone = MachineModel.from_json(CALIBRATED.to_json())
        assert clone == CALIBRATED
        assert clone.backend_cost("c_pair", "numpy-fused") == 5e-10

    def test_from_json_tolerates_unknown_keys(self):
        blob = CALIBRATED.to_json().replace(
            '"c_mem"', '"future_field": 1.0, "c_mem"', 1
        )
        assert MachineModel.from_json(blob) == CALIBRATED

    def test_save_load(self, tmp_path):
        path = tmp_path / "machine.json"
        CALIBRATED.save(path)
        assert MachineModel.load(path) == CALIBRATED

    def test_resolve_prefers_existing_file(self, tmp_path):
        path = tmp_path / "machine.json"
        CALIBRATED.save(path)
        # An existing file must load verbatim — no probes re-run.
        assert resolve_machine_model(str(path)) == CALIBRATED

    def test_resolve_env_var(self, tmp_path, monkeypatch):
        path = tmp_path / "env-machine.json"
        CALIBRATED.save(path)
        monkeypatch.setenv(CALIBRATION_ENV, str(path))
        assert resolve_machine_model() == CALIBRATED


class TestServiceComputeStats:
    def test_stats_blob_shape_and_tallies(self, small_grid):
        pts = make_clustered_points(small_grid, 500, seed=63)
        svc = DensityService(
            pts, small_grid, machine=NOMINAL, compute=DEFAULT_BACKEND
        )
        q = make_points(small_grid, 8, seed=64).coords
        svc.query_points(q)
        blob = svc.stats()["compute"]
        assert blob["requested"] == DEFAULT_BACKEND
        assert blob["available"] == list(available_backends())
        assert sum(blob["chosen"].values()) >= 1
        assert set(blob["chosen"]) <= set(available_backends())
        assert sum(blob["dispatches"].values()) >= 1

    def test_unknown_compute_fails_fast(self, small_grid):
        pts = make_points(small_grid, 10, seed=65)
        with pytest.raises(KeyError, match="unknown compute backend"):
            DensityService(pts, small_grid, compute="no-such-backend")

    def test_pinned_fused_matches_reference(self, small_grid):
        pts = make_clustered_points(small_grid, 800, seed=66)
        q = make_points(small_grid, 40, seed=67).coords
        ref = DensityService(pts, small_grid, machine=NOMINAL)
        fused = DensityService(
            pts, small_grid, machine=NOMINAL, compute="numpy-fused"
        )
        a = ref.query_points(q, backend="direct")
        b = fused.query_points(q, backend="direct")
        np.testing.assert_allclose(b, a, rtol=1e-12, atol=1e-18)
