"""Tests for the bucket index: no false negatives, exact counts, batching."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DomainSpec, GridSpec
from repro.serve.index import BucketIndex
from tests.helpers import make_clustered_points, make_points


@pytest.fixture
def index(small_grid):
    pts = make_points(small_grid, 120, seed=4)
    return BucketIndex(small_grid, pts.coords)


class TestConstruction:
    def test_cell_grid_is_one_bandwidth_per_axis(self, small_grid, index):
        d = small_grid.domain
        assert index.nx == int(np.ceil(d.gx / small_grid.hs))
        assert index.ny == int(np.ceil(d.gy / small_grid.hs))
        assert index.nt == int(np.ceil(d.gt / small_grid.ht))

    def test_rejects_bad_shapes(self, small_grid):
        with pytest.raises(ValueError, match=r"\(n, 3\)"):
            BucketIndex(small_grid, np.zeros((4, 2)))
        with pytest.raises(ValueError, match="weights"):
            BucketIndex(small_grid, np.zeros((4, 3)), np.ones(3))

    def test_empty_index(self, small_grid):
        idx = BucketIndex(small_grid, np.empty((0, 3)))
        assert idx.n == 0
        assert idx.occupied_cells == 0
        assert idx.candidates(0, 0, 0).size == 0

    def test_overhead_is_linear_not_per_cell_objects(self, small_grid):
        pts = make_points(small_grid, 500, seed=5)
        idx = BucketIndex(small_grid, pts.coords)
        # CSR arrays only: sorted cells + permutation (n each) and one
        # aggregate per-cell count table — no per-cell Python objects.
        assert idx.nbytes <= 8 * (2 * idx.n + idx.n_cells) + 64


class TestCandidates:
    def test_no_false_negatives(self, small_grid):
        """Every event within bandwidth of a query is in its candidate set
        — the correctness contract of the 3x3x3 neighbourhood walk."""
        pts = make_clustered_points(small_grid, 200, seed=6)
        idx = BucketIndex(small_grid, pts.coords)
        rng = np.random.default_rng(7)
        d = small_grid.domain
        qs = rng.uniform(
            [d.x0, d.y0, d.t0],
            [d.x0 + d.gx, d.y0 + d.gy, d.t0 + d.gt],
            size=(50, 3),
        )
        hs, ht = small_grid.hs, small_grid.ht
        for q in qs:
            dx = pts.coords[:, 0] - q[0]
            dy = pts.coords[:, 1] - q[1]
            dt = pts.coords[:, 2] - q[2]
            inside = ((dx * dx + dy * dy) < hs * hs) & (np.abs(dt) <= ht)
            cc = idx.cell_coords(q[None, :])[0]
            cand = set(idx.candidates(*(int(c) for c in cc)).tolist())
            missing = set(np.nonzero(inside)[0].tolist()) - cand
            assert not missing, f"index missed events {missing} for query {q}"

    def test_candidates_unique(self, index):
        for cx in range(index.nx):
            for cy in range(index.ny):
                cand = index.candidates(cx, cy, 0)
                assert len(np.unique(cand)) == cand.size

    def test_candidate_counts_match_gather(self, small_grid):
        pts = make_clustered_points(small_grid, 150, seed=8)
        idx = BucketIndex(small_grid, pts.coords)
        qs = make_points(small_grid, 40, seed=9).coords
        counts = idx.candidate_counts(qs)
        cells = idx.cell_coords(qs)
        for q_cell, n_exp in zip(cells, counts):
            got = idx.candidates(*(int(c) for c in q_cell)).size
            assert got == n_exp

    def test_off_domain_queries_clamp(self, small_grid):
        pts = make_points(small_grid, 50, seed=10)
        idx = BucketIndex(small_grid, pts.coords)
        d = small_grid.domain
        far = np.array([[d.x0 + d.gx + 100.0, d.y0 - 100.0, d.t0 + d.gt + 100.0]])
        assert idx.candidate_counts(far).shape == (1,)  # no crash, clamped


class TestGrouping:
    def test_groups_partition_the_batch(self, index, small_grid):
        qs = make_points(small_grid, 64, seed=11).coords
        seen = np.concatenate(
            [rows for _, rows in index.group_queries(qs)]
        )
        assert sorted(seen.tolist()) == list(range(64))

    def test_same_cell_queries_share_a_group(self, small_grid):
        pts = make_points(small_grid, 30, seed=12)
        idx = BucketIndex(small_grid, pts.coords)
        q = np.array([[1.0, 1.0, 1.0], [1.1, 1.2, 1.05], [1.05, 0.9, 0.95]])
        groups = list(idx.group_queries(q))
        assert len(groups) == 1
        assert groups[0][1].size == 3

    def test_empty_batch(self, index):
        assert list(index.group_queries(np.empty((0, 3)))) == []


class TestWeights:
    def test_weights_carried(self, small_grid):
        pts = make_points(small_grid, 20, seed=13)
        w = np.linspace(0.5, 2.0, 20)
        idx = BucketIndex(small_grid, pts.coords, w)
        np.testing.assert_array_equal(idx.weights, w)


def _same_candidates(incremental, rebuilt):
    """Both indexes return the same candidate *event sets* everywhere.

    Candidate row indices differ (storage layouts differ), so compare the
    coordinates they address, as multisets per cell.
    """
    assert incremental.n == rebuilt.n
    for cx in range(incremental.nx):
        for cy in range(incremental.ny):
            for ct in range(incremental.nt):
                a = incremental.coords[incremental.candidates(cx, cy, ct)]
                b = rebuilt.coords[rebuilt.candidates(cx, cy, ct)]
                assert a.shape == b.shape
                order_a = np.lexsort((a[:, 2], a[:, 1], a[:, 0]))
                order_b = np.lexsort((b[:, 2], b[:, 1], b[:, 0]))
                np.testing.assert_array_equal(a[order_a], b[order_b])


class TestIncrementalSegments:
    """Satellite acceptance: incrementally-synced segments equal a full
    rebuild after randomized add/remove/slide sequences, with only the
    delta batches re-bucketed."""

    def test_add_remove_matches_rebuild(self, small_grid):
        rng = np.random.default_rng(14)
        idx = BucketIndex(small_grid)
        live = {}
        next_id = 0
        from repro.core import WorkCounter

        for step in range(30):
            if live and rng.random() < 0.4:
                sid = list(live)[int(rng.integers(0, len(live)))]
                idx.remove_segment(sid)
                del live[sid]
            else:
                m = int(rng.integers(1, 40))
                coords = make_points(small_grid, m, seed=100 + step).coords
                idx.add_segment(next_id, coords)
                live[next_id] = coords
                next_id += 1
            if live:
                rebuilt = BucketIndex(
                    small_grid, np.vstack([live[k] for k in live])
                )
            else:
                rebuilt = BucketIndex(small_grid)
            _same_candidates(idx, rebuilt)
            counts_q = make_points(small_grid, 25, seed=step).coords
            np.testing.assert_array_equal(
                idx.candidate_counts(counts_q),
                rebuilt.candidate_counts(counts_q),
            )

    def test_sync_touches_only_the_delta(self, small_grid):
        """WorkCounter check: one slide re-buckets ~the arriving batch,
        not the n live events."""
        from repro.core import WorkCounter

        batches = {
            i: make_points(small_grid, 50, seed=200 + i).coords
            for i in range(6)
        }
        idx = BucketIndex(small_grid)
        c = WorkCounter()
        idx.sync(list(batches.items()), counter=c)
        assert c.index_events_bucketed == 300
        # Slide: batch 0 retires, batch 6 arrives.
        batches.pop(0)
        batches[6] = make_points(small_grid, 50, seed=206).coords
        c2 = WorkCounter()
        added, retired = idx.sync(list(batches.items()), counter=c2)
        assert (added, retired) == (50, 50)
        assert c2.index_events_bucketed == 50  # the delta, not 300
        assert c2.index_events_retired == 50
        _same_candidates(
            idx, BucketIndex(small_grid, np.vstack(list(batches.values())))
        )

    def test_dead_rows_compact(self, small_grid):
        """Retiring most segments triggers compaction; results unchanged."""
        idx = BucketIndex(small_grid)
        keep = make_points(small_grid, 20, seed=300).coords
        idx.add_segment("keep", keep)
        for i in range(5):
            idx.add_segment(i, make_points(small_grid, 60, seed=301 + i).coords)
        for i in range(5):
            idx.remove_segment(i)
        assert idx.dead_rows < idx.n + 65  # compaction bounded the garbage
        assert idx.n == 20
        _same_candidates(idx, BucketIndex(small_grid, keep))

    def test_duplicate_segment_rejected(self, small_grid):
        idx = BucketIndex(small_grid)
        idx.add_segment(1, make_points(small_grid, 5, seed=310).coords)
        with pytest.raises(ValueError, match="already registered"):
            idx.add_segment(1, make_points(small_grid, 5, seed=311).coords)
        with pytest.raises(KeyError):
            idx.remove_segment(99)

    def test_stats_shape(self, small_grid):
        idx = BucketIndex(small_grid, make_points(small_grid, 30, seed=312).coords)
        s = idx.stats()
        assert s["segments"] == 1 and s["events"] == 30
        assert set(s) >= {
            "segments", "events", "dead_rows",
            "events_bucketed", "events_retired",
        }


def test_degenerate_tiny_domain():
    """A domain smaller than one bandwidth still indexes (one cell)."""
    grid = GridSpec(DomainSpec(gx=1.0, gy=1.0, gt=1.0, sres=0.5, tres=0.5),
                    hs=5.0, ht=5.0)
    idx = BucketIndex(grid, np.array([[0.5, 0.5, 0.5]]))
    assert idx.n_cells == 1
    assert idx.candidates(0, 0, 0).size == 1


class TestMergePolicyAndCompaction:
    """Tentpole acceptance: the merge policy bounds segment count with
    zero re-bucketing, member retirement filters (never re-sorts), and
    compaction debt is paid in sync — off the remove path."""

    def _batches(self, small_grid, n_batches, size=25, seed0=400):
        return {
            i: make_points(small_grid, size, seed=seed0 + i).coords
            for i in range(n_batches)
        }

    def test_sync_merges_past_the_cap_without_rebucketing(self, small_grid):
        from repro.core import WorkCounter

        batches = self._batches(small_grid, 24)
        idx = BucketIndex(small_grid, merge_segment_cap=8)
        c = WorkCounter()
        idx.sync(list(batches.items()), counter=c)
        assert idx.segment_count <= 8
        assert idx.merged_segments >= 1
        assert c.index_segments_merged > 0
        # Merging copies rows; it never re-buckets an event.
        assert c.index_events_bucketed == 24 * 25
        _same_candidates(
            idx, BucketIndex(small_grid, np.vstack(list(batches.values())))
        )

    def test_member_retirement_from_merged_segment(self, small_grid):
        from repro.core import WorkCounter

        batches = self._batches(small_grid, 20)
        idx = BucketIndex(small_grid, merge_segment_cap=6)
        idx.sync(list(batches.items()))
        assert idx.merged_segments >= 1
        # Retire three of the oldest (merged-away) batches.
        for bid in (0, 1, 2):
            batches.pop(bid)
        c = WorkCounter()
        added, retired = idx.sync(list(batches.items()), counter=c)
        assert (added, retired) == (0, 75)
        assert c.index_events_bucketed == 0  # filtered, not re-bucketed
        _same_candidates(
            idx, BucketIndex(small_grid, np.vstack(list(batches.values())))
        )

    def test_sliding_soak_keeps_segments_and_debt_bounded(self, small_grid):
        from repro.core import WorkCounter

        idx = BucketIndex(small_grid, merge_segment_cap=6)
        c = WorkCounter()
        live = {}
        for step in range(60):
            live[step] = make_points(small_grid, 20, seed=500 + step).coords
            if len(live) > 12:
                live.pop(min(live))
            idx.sync(list(live.items()), counter=c)
            assert idx.segment_count <= 6
            assert idx.dead_rows <= idx.dead_row_budget
        # O(delta) bucketing: every event bucketed exactly once.
        assert c.index_events_bucketed == 60 * 20
        # Storage stayed bounded (reuse + debt paydown, no growth).
        assert idx._size <= 2 * idx.n + 64
        _same_candidates(
            idx, BucketIndex(small_grid, np.vstack(list(live.values())))
        )

    def test_remove_segment_defers_compaction_to_sync(self, small_grid):
        idx = BucketIndex(small_grid, merge_segment_cap=None)
        batches = self._batches(small_grid, 8, size=30)
        idx.sync(list(batches.items()))
        idx.remove_segment(3)
        # No eager sweep: the rows just went dead on the free list.
        assert idx.dead_rows == 30
        batches.pop(3)
        idx.sync(list(batches.items()))
        assert idx.dead_rows <= idx.dead_row_budget
        _same_candidates(
            idx, BucketIndex(small_grid, np.vstack(list(batches.values())))
        )

    def test_gap_reuse_keeps_storage_flat(self, small_grid):
        """A retired batch's rows are reused by the next like-sized add."""
        idx = BucketIndex(small_grid, merge_segment_cap=None)
        idx.add_segment("a", make_points(small_grid, 40, seed=600).coords)
        idx.add_segment("b", make_points(small_grid, 40, seed=601).coords)
        size_before = idx._size
        idx.remove_segment("a")
        idx.add_segment("c", make_points(small_grid, 40, seed=602).coords)
        assert idx._size == size_before  # slot reused, no growth
        assert idx.dead_rows == 0

    def test_heavy_unsynced_retirement_still_bounded(self, small_grid):
        """The 4x safety valve: remove-only callers cannot leak storage."""
        idx = BucketIndex(small_grid, merge_segment_cap=None)
        keep = make_points(small_grid, 10, seed=610).coords
        idx.add_segment("keep", keep)
        for i in range(40):
            idx.add_segment(i, make_points(small_grid, 50, seed=611 + i).coords)
        for i in range(40):
            idx.remove_segment(i)
        assert idx.dead_rows <= 4 * max(idx.n, 64)
        _same_candidates(idx, BucketIndex(small_grid, keep))

    def test_merge_preserves_weights(self, small_grid):
        from repro.serve.engine import direct_sum
        from repro.core.kernels import get_kernel

        rng = np.random.default_rng(620)
        batches = {
            i: make_points(small_grid, 15, seed=630 + i).coords
            for i in range(10)
        }
        idx = BucketIndex(small_grid, merge_segment_cap=4)
        for i, coords in batches.items():
            idx.add_segment(i, coords, weights=np.full(15, 1.0 + i))
        idx.sync(list(batches.items()))  # triggers the merge
        assert idx.merged_segments >= 1
        all_coords = np.vstack(list(batches.values()))
        all_w = np.concatenate([np.full(15, 1.0 + i) for i in batches])
        mono = BucketIndex(small_grid, all_coords, all_w)
        q = make_points(small_grid, 30, seed=640).coords
        kern = get_kernel("epanechnikov")
        np.testing.assert_allclose(
            direct_sum(idx, q, kern, 1.0),
            direct_sum(mono, q, kern, 1.0),
            rtol=1e-12, atol=1e-18,
        )

    def test_merge_cap_validation(self, small_grid):
        with pytest.raises(ValueError, match="merge_segment_cap"):
            BucketIndex(small_grid, merge_segment_cap=1)
        # None disables merging entirely.
        idx = BucketIndex(small_grid, merge_segment_cap=None)
        batches = self._batches(small_grid, 30, size=5, seed0=700)
        idx.sync(list(batches.items()))
        assert idx.segment_count == 30
