"""Cross-algorithm equivalence: every algorithm computes the same volume.

This is the central correctness property of the paper's Section 3: PB,
PB-DISK, PB-BAR and PB-SYM are *algebraic rearrangements* of VB, not
approximations.  We assert element-wise agreement against the VB gold
standard to tight tolerance, for every registered kernel, on uniform and
clustered data, with unit and physical resolutions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import get_algorithm, sequential_algorithms
from repro.core import DomainSpec, GridSpec, PointSet
from repro.core.kernels import available_kernels

from tests.helpers import make_clustered_points, make_points

# The paper's six sequential algorithms: exact rearrangements of VB.
# (pb-sym-adaptive also registers as sequential but computes a *different*
# estimator — per-point bandwidths — and has its own test module.)
PAPER_SEQ = ("vb", "vb-dec", "pb", "pb-disk", "pb-bar", "pb-sym")
SEQ = [a for a in sequential_algorithms() if a in PAPER_SEQ]
NON_GOLD = [a for a in SEQ if a != "vb"]


def run(name, pts, grid, **kw):
    return get_algorithm(name)(pts, grid, **kw)


class TestAgainstGold:
    @pytest.mark.parametrize("algo", NON_GOLD)
    def test_matches_vb_uniform(self, algo, small_grid, uniform_points):
        ref = run("vb", uniform_points, small_grid)
        out = run(algo, uniform_points, small_grid)
        np.testing.assert_allclose(out.data, ref.data, rtol=1e-10, atol=1e-14)

    @pytest.mark.parametrize("algo", NON_GOLD)
    def test_matches_vb_clustered(self, algo, small_grid, clustered_points):
        ref = run("vb", clustered_points, small_grid)
        out = run(algo, clustered_points, small_grid)
        np.testing.assert_allclose(out.data, ref.data, rtol=1e-10, atol=1e-14)

    @pytest.mark.parametrize("algo", NON_GOLD)
    @pytest.mark.parametrize("kernel", available_kernels())
    def test_matches_vb_all_kernels(self, algo, kernel, small_grid, uniform_points):
        ref = run("vb", uniform_points, small_grid, kernel=kernel)
        out = run(algo, uniform_points, small_grid, kernel=kernel)
        np.testing.assert_allclose(out.data, ref.data, rtol=1e-10, atol=1e-14)

    @pytest.mark.parametrize("algo", NON_GOLD)
    def test_matches_vb_physical_units(self, algo, physical_grid):
        pts = make_clustered_points(physical_grid, 40, seed=3)
        ref = run("vb", pts, physical_grid)
        out = run(algo, pts, physical_grid)
        np.testing.assert_allclose(out.data, ref.data, rtol=1e-10, atol=1e-18)


class TestEdgeGeometry:
    """Algorithms must agree when cylinders are clipped by the boundary."""

    @pytest.mark.parametrize("algo", NON_GOLD)
    def test_point_in_corner(self, algo, small_grid):
        pts = PointSet(np.array([[0.01, 0.01, 0.01]]))
        ref = run("vb", pts, small_grid)
        out = run(algo, pts, small_grid)
        np.testing.assert_allclose(out.data, ref.data, rtol=1e-10, atol=1e-14)

    @pytest.mark.parametrize("algo", NON_GOLD)
    def test_point_on_far_edges(self, algo, small_grid):
        pts = PointSet(np.array([[15.99, 13.99, 19.99]]))
        ref = run("vb", pts, small_grid)
        out = run(algo, pts, small_grid)
        np.testing.assert_allclose(out.data, ref.data, rtol=1e-10, atol=1e-14)

    @pytest.mark.parametrize("algo", NON_GOLD)
    def test_bandwidth_larger_than_domain(self, algo):
        grid = GridSpec(DomainSpec.from_voxels(8, 8, 8), hs=20.0, ht=20.0)
        pts = make_points(grid, 10, seed=9)
        ref = run("vb", pts, grid)
        out = run(algo, pts, grid)
        np.testing.assert_allclose(out.data, ref.data, rtol=1e-10, atol=1e-14)

    @pytest.mark.parametrize("algo", NON_GOLD)
    def test_tiny_bandwidth(self, algo, small_grid):
        grid = GridSpec(small_grid.domain, hs=0.4, ht=0.4)
        pts = make_points(grid, 25, seed=4)
        ref = run("vb", pts, grid)
        out = run(algo, pts, grid)
        np.testing.assert_allclose(out.data, ref.data, rtol=1e-10, atol=1e-14)

    @pytest.mark.parametrize("algo", NON_GOLD)
    def test_single_voxel_time_axis(self, algo):
        grid = GridSpec(DomainSpec.from_voxels(10, 10, 1), hs=2.0, ht=1.0)
        pts = make_points(grid, 15, seed=5)
        ref = run("vb", pts, grid)
        out = run(algo, pts, grid)
        np.testing.assert_allclose(out.data, ref.data, rtol=1e-10, atol=1e-14)

    @pytest.mark.parametrize("algo", SEQ)
    def test_single_point(self, algo, small_grid):
        pts = PointSet(np.array([[8.2, 7.3, 10.1]]))
        out = run(algo, pts, small_grid)
        assert out.data.max() > 0
        assert np.isfinite(out.data).all()

    @pytest.mark.parametrize("algo", SEQ)
    def test_duplicate_points_scale_linearly(self, algo, small_grid):
        one = PointSet(np.array([[8.2, 7.3, 10.1]]))
        three = PointSet(np.array([[8.2, 7.3, 10.1]] * 3))
        r1 = run(algo, one, small_grid)
        r3 = run(algo, three, small_grid)
        # Normalisation divides by n: 3 identical points at n=3 give the
        # same density as 1 point at n=1.
        np.testing.assert_allclose(r3.data, r1.data, rtol=1e-12)


class TestResultMetadata:
    @pytest.mark.parametrize("algo", SEQ)
    def test_reports_phases(self, algo, small_grid, uniform_points):
        res = run(algo, uniform_points, small_grid)
        assert "init" in res.timer.seconds
        assert "compute" in res.timer.seconds
        assert res.elapsed > 0

    @pytest.mark.parametrize("algo", SEQ)
    def test_counts_points_and_init(self, algo, small_grid, uniform_points):
        res = run(algo, uniform_points, small_grid)
        assert res.counter.points_processed == uniform_points.n
        assert res.counter.init_writes == small_grid.n_voxels

    @pytest.mark.parametrize("algo", SEQ)
    def test_algorithm_name_matches_registry(self, algo, small_grid, uniform_points):
        res = run(algo, uniform_points, small_grid)
        assert res.algorithm == algo
