"""Property-based tests (hypothesis) on the STKDE estimator itself."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.algorithms import pb_sym, vb
from repro.core import DomainSpec, GridSpec, PointSet

# Strategy: modest grids + interior points so tests stay fast and exact.
grids = st.builds(
    lambda gx, gy, gt, hs, ht: GridSpec(DomainSpec.from_voxels(gx, gy, gt), hs, ht),
    gx=st.integers(6, 24),
    gy=st.integers(6, 24),
    gt=st.integers(6, 24),
    hs=st.floats(0.6, 5.0),
    ht=st.floats(0.6, 5.0),
)


@st.composite
def grid_and_points(draw, max_points=12):
    grid = draw(grids)
    n = draw(st.integers(1, max_points))
    coords = []
    for _ in range(n):
        coords.append(
            [
                draw(st.floats(0, grid.Gx, exclude_max=True)),
                draw(st.floats(0, grid.Gy, exclude_max=True)),
                draw(st.floats(0, grid.Gt, exclude_max=True)),
            ]
        )
    return grid, PointSet(np.array(coords))


@given(gp=grid_and_points())
@settings(max_examples=60, deadline=None)
def test_property_pb_sym_matches_gold(gp):
    """PB-SYM equals VB on arbitrary geometry (the paper's Section 3 claim)."""
    grid, pts = gp
    ref = vb(pts, grid)
    out = pb_sym(pts, grid)
    np.testing.assert_allclose(out.data, ref.data, rtol=1e-9, atol=1e-13)


@given(gp=grid_and_points())
@settings(max_examples=80, deadline=None)
def test_property_density_nonnegative_and_finite(gp):
    grid, pts = gp
    out = pb_sym(pts, grid)
    assert np.isfinite(out.data).all()
    assert (out.data >= 0).all()


@given(gp=grid_and_points(max_points=6))
@settings(max_examples=60, deadline=None)
def test_property_superposition(gp):
    """f(A u B) is the n-weighted average of f(A) and f(B): the estimator is
    a normalised sum of per-point contributions."""
    grid, pts = gp
    assume(pts.n >= 2)
    k = pts.n // 2
    a = pts.subset(np.arange(k))
    b = pts.subset(np.arange(k, pts.n))
    fa = pb_sym(a, grid).data
    fb = pb_sym(b, grid).data
    fab = pb_sym(pts, grid).data
    np.testing.assert_allclose(
        fab, (a.n * fa + b.n * fb) / pts.n, rtol=1e-9, atol=1e-13
    )


@given(gp=grid_and_points())
@settings(max_examples=60, deadline=None)
def test_property_permutation_invariance(gp):
    """Point order never affects the result (basis of all parallel splits)."""
    grid, pts = gp
    rng = np.random.default_rng(0)
    perm = rng.permutation(pts.n)
    out1 = pb_sym(pts, grid).data
    out2 = pb_sym(pts.subset(perm), grid).data
    np.testing.assert_allclose(out1, out2, rtol=1e-12, atol=1e-16)


@given(
    gt=st.integers(16, 32),
    hs=st.floats(2.0, 3.0),
    ht=st.floats(2.0, 3.0),
    px=st.floats(8.0, 12.0),
    py=st.floats(8.0, 12.0),
    pt=st.floats(8.0, 12.0),
)
@settings(max_examples=40, deadline=None)
def test_property_interior_mass_conservation(gt, hs, ht, px, py, pt):
    """A fully interior cylinder deposits total mass ~ 1/n * (discretised
    kernel mass); summed over n points the volume integrates to ~1.

    The Riemann-sum discretisation error shrinks with resolution; at these
    bandwidths it stays within a few percent — enough to catch any
    normalisation bug (wrong hs/ht powers blow this up by orders).
    """
    grid = GridSpec(DomainSpec.from_voxels(20, 20, gt), hs=hs, ht=ht)
    pts = PointSet(np.array([[px, py, pt]]))
    out = pb_sym(pts, grid)
    assert out.volume.total_mass == pytest.approx(1.0, rel=0.35)


def test_mass_converges_with_resolution():
    """Refining the grid drives the integral of f-hat to exactly 1."""
    masses = []
    for res in (1.0, 0.5, 0.25):
        dom = DomainSpec(gx=20.0, gy=20.0, gt=20.0, sres=res, tres=res)
        grid = GridSpec(dom, hs=3.0, ht=3.0)
        pts = PointSet(np.array([[10.0, 10.0, 10.0]]))
        masses.append(pb_sym(pts, grid).volume.total_mass)
    errs = [abs(m - 1.0) for m in masses]
    assert errs[2] < errs[1] < errs[0]
    assert errs[2] < 0.02


def test_translation_equivariance():
    """Shifting all points by whole voxels shifts the density volume."""
    grid = GridSpec(DomainSpec.from_voxels(24, 24, 24), hs=2.5, ht=2.5)
    rng = np.random.default_rng(5)
    base = rng.uniform([4, 4, 4], [12, 12, 12], size=(8, 3))
    shifted = base + np.array([6.0, 5.0, 7.0])
    f1 = pb_sym(PointSet(base), grid).data
    f2 = pb_sym(PointSet(shifted), grid).data
    np.testing.assert_allclose(
        f2[6:, 5:, 7:], f1[:-6, :-5, :-7], rtol=1e-10, atol=1e-14
    )
