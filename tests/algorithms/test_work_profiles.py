"""Tests of each algorithm's *work profile* — the complexity claims of
Sections 2-3, checked through the operation counters.

These are the paper's analytical statements:

* VB performs ``Theta(Gx*Gy*Gt*n)`` distance tests;
* PB visits only cylinder voxels: ``Theta(Gx*Gy*Gt + n*Hs^2*Ht)``;
* PB-DISK removes the per-voxel spatial evaluations;
* PB-BAR removes the per-voxel temporal evaluations;
* PB-SYM removes both, paying one disk + one bar per point.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import pb, pb_bar, pb_disk, pb_sym, vb, vb_dec
from repro.core import DomainSpec, GridSpec, WorkCounter

from tests.helpers import make_points


@pytest.fixture
def grid():
    # Interior-friendly: domain much larger than bandwidth.
    return GridSpec(DomainSpec.from_voxels(40, 40, 40), hs=4.0, ht=3.0)


@pytest.fixture
def pts(grid):
    # Keep points interior so stamps are unclipped and counts exact.
    rng = np.random.default_rng(8)
    return make_points(grid, 20, seed=8).subset(slice(0, 20)).__class__(
        rng.uniform([6, 6, 5], [34, 34, 35], size=(20, 3))
    )


def counts(algo, pts, grid):
    c = WorkCounter()
    algo(pts, grid, counter=c)
    return c


class TestVB:
    def test_distance_tests_exactly_voxels_times_points(self, grid, pts):
        c = counts(vb, pts, grid)
        assert c.distance_tests == grid.n_voxels * pts.n
        assert c.spatial_evals == grid.n_voxels * pts.n

    def test_init_writes_full_volume(self, grid, pts):
        c = counts(vb, pts, grid)
        assert c.init_writes == grid.n_voxels


class TestVBDEC:
    def test_fewer_tests_than_vb(self, grid, pts):
        c_vb = counts(vb, pts, grid)
        c_dec = counts(vb_dec, pts, grid)
        assert c_dec.distance_tests < c_vb.distance_tests / 4

    def test_fewer_madds_than_vb(self, grid, pts):
        """Blocking shrinks the tabulated tiles, never the contributions.

        madds are charged per tabulated (voxel, point) pair — the tile
        shape, mask included (O(1) accounting) — so VB-DEC's decomposed
        tiles charge strictly less than VB's full Theta(voxels * points)
        sweep, and exactly as much as their own distance tests.
        """
        c_vb = counts(vb, pts, grid)
        c_dec = counts(vb_dec, pts, grid)
        assert c_dec.madds == c_dec.distance_tests
        assert c_dec.madds < c_vb.madds


class TestPBFamily:
    def test_pb_visits_only_cylinders(self, grid, pts):
        c = counts(pb, pts, grid)
        stamp = (2 * grid.Hs + 1) ** 2 * (2 * grid.Ht + 1)
        assert c.distance_tests == pts.n * stamp
        assert c.spatial_evals == pts.n * stamp
        assert c.temporal_evals == pts.n * stamp

    def test_pb_disk_removes_spatial_cube(self, grid, pts):
        c = counts(pb_disk, pts, grid)
        disk = (2 * grid.Hs + 1) ** 2
        cube = disk * (2 * grid.Ht + 1)
        assert c.spatial_evals == pts.n * disk  # tabulated once
        assert c.temporal_evals == pts.n * cube  # still per voxel

    def test_pb_bar_removes_temporal_cube(self, grid, pts):
        c = counts(pb_bar, pts, grid)
        disk = (2 * grid.Hs + 1) ** 2
        cube = disk * (2 * grid.Ht + 1)
        bar = 2 * grid.Ht + 1
        assert c.temporal_evals == pts.n * bar  # tabulated once
        assert c.spatial_evals == pts.n * cube  # still per voxel

    def test_pb_sym_tabulates_both(self, grid, pts):
        c = counts(pb_sym, pts, grid)
        disk = (2 * grid.Hs + 1) ** 2
        bar = 2 * grid.Ht + 1
        assert c.spatial_evals == pts.n * disk
        assert c.temporal_evals == pts.n * bar
        assert c.madds == pts.n * disk * bar

    def test_kernel_flop_ordering(self, grid, pts):
        """The chain PB > PB-BAR > PB-DISK > PB-SYM in kernel *flops*.

        Raw evaluation counts do not order PB-BAR vs PB-DISK (PB-DISK trades
        expensive per-voxel spatial evals for cheap temporal ones), which is
        precisely why Table 3 shows PB-DISK ahead: the spatial kernel costs
        more per evaluation.  Weighting by per-kernel flops restores the
        paper's ordering.
        """
        flops = {}
        for algo in (pb, pb_bar, pb_disk, pb_sym):
            c = counts(algo, pts, grid)
            flops[algo.algorithm_name] = (
                c.spatial_evals * 6 + c.temporal_evals * 3
            )
        assert flops["pb"] > flops["pb-bar"] > flops["pb-disk"] > flops["pb-sym"]

    def test_sym_speedup_grows_with_temporal_bandwidth(self):
        """Table 3's observation: PB-SYM gains most at high bandwidth."""
        dom = DomainSpec.from_voxels(40, 40, 60)
        pts_grid_lo = GridSpec(dom, hs=4.0, ht=1.0)
        pts_grid_hi = GridSpec(dom, hs=4.0, ht=8.0)
        rng = np.random.default_rng(8)
        from repro.core import PointSet

        pts = PointSet(rng.uniform([8, 8, 16], [32, 32, 44], size=(15, 3)))
        ratios = {}
        for tag, g in (("lo", pts_grid_lo), ("hi", pts_grid_hi)):
            c_pb = counts(pb, pts, g)
            c_sym = counts(pb_sym, pts, g)
            ratios[tag] = (c_pb.spatial_evals + c_pb.temporal_evals) / (
                c_sym.spatial_evals + c_sym.temporal_evals
            )
        assert ratios["hi"] > ratios["lo"]


class TestInitVsCompute:
    def test_sparse_instance_init_dominated(self):
        """Flu-like: huge grid, few points -> init outweighs compute."""
        grid = GridSpec(DomainSpec.from_voxels(60, 60, 60), hs=1.5, ht=1.5)
        pts = make_points(grid, 5, seed=1)
        c = counts(pb_sym, pts, grid)
        assert c.init_writes > 10 * c.madds

    def test_dense_instance_compute_dominated(self):
        """eBird-like: many points, large bandwidth -> compute dominates."""
        grid = GridSpec(DomainSpec.from_voxels(20, 20, 20), hs=6.0, ht=5.0)
        pts = make_points(grid, 300, seed=2)
        c = counts(pb_sym, pts, grid)
        assert c.madds > 10 * c.init_writes
