"""Direct tests of the PB-SYM stamping primitives (clip / origin paths).

These are the primitives every parallel strategy builds on: DD passes a
clip window, REP additionally redirects writes into a halo-sized private
buffer via ``vol_origin``.  Their algebra — clipped pieces summing to the
whole — is what makes the parallel volumes exactly equal the sequential
one.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.pb_sym import stamp_point_sym, stamp_points_sym
from repro.core import DomainSpec, GridSpec, VoxelWindow, WorkCounter
from repro.core.kernels import get_kernel

from tests.helpers import make_points

KERNEL = get_kernel("epanechnikov")


@pytest.fixture
def grid():
    return GridSpec(DomainSpec.from_voxels(24, 22, 26), hs=3.1, ht=2.6)


def full_stamp(grid, coords):
    vol = np.zeros(grid.shape)
    stamp_points_sym(vol, grid, KERNEL, coords, 1.0, WorkCounter())
    return vol


class TestClipAlgebra:
    def test_clip_pieces_sum_to_whole(self, grid):
        """Stamping through a partition of clip windows reproduces the
        unclipped stamp exactly (the DD invariant)."""
        pts = make_points(grid, 40, seed=1)
        whole = full_stamp(grid, pts.coords)
        pieces = np.zeros(grid.shape)
        cuts = [0, 9, 15, 24]
        for lo, hi in zip(cuts, cuts[1:]):
            clip = VoxelWindow(lo, hi, 0, grid.Gy, 0, grid.Gt)
            stamp_points_sym(pieces, grid, KERNEL, pts.coords, 1.0,
                             WorkCounter(), clip=clip)
        np.testing.assert_allclose(pieces, whole, rtol=1e-13, atol=1e-18)

    def test_clip_outside_window_is_noop(self, grid):
        vol = np.zeros(grid.shape)
        clip = VoxelWindow(20, 24, 18, 22, 20, 26)
        coords = np.array([[2.0, 2.0, 2.0]])  # window nowhere near clip
        stamp_points_sym(vol, grid, KERNEL, coords, 1.0, WorkCounter(), clip=clip)
        assert not vol.any()

    def test_clip_never_writes_outside(self, grid):
        vol = np.zeros(grid.shape)
        clip = VoxelWindow(5, 12, 4, 11, 6, 14)
        pts = make_points(grid, 50, seed=2)
        stamp_points_sym(vol, grid, KERNEL, pts.coords, 1.0, WorkCounter(), clip=clip)
        mask = np.ones(grid.shape, dtype=bool)
        mask[clip.slices()] = False
        assert not vol[mask].any()
        assert vol[clip.slices()].any()


class TestOriginOffset:
    def test_buffer_stamp_matches_volume_region(self, grid):
        """Stamping into an offset buffer (REP's replica path) yields the
        same values as the corresponding region of a full-volume stamp."""
        pts = make_points(grid, 30, seed=3)
        whole = full_stamp(grid, pts.coords)
        halo = VoxelWindow(4, 15, 3, 14, 5, 18)
        buf = np.zeros(halo.shape)
        stamp_points_sym(
            buf, grid, KERNEL, pts.coords, 1.0, WorkCounter(),
            clip=halo, vol_origin=(halo.x0, halo.y0, halo.t0),
        )
        np.testing.assert_allclose(buf, whole[halo.slices()], rtol=1e-13, atol=1e-18)

    def test_single_point_scalar_api_matches_batch(self, grid):
        vol_a = np.zeros(grid.shape)
        stamp_point_sym(vol_a, grid, KERNEL, 10.3, 9.7, 12.1, 1.0, WorkCounter())
        vol_b = np.zeros(grid.shape)
        stamp_points_sym(vol_b, grid, KERNEL,
                         np.array([[10.3, 9.7, 12.1]]), 1.0, WorkCounter())
        np.testing.assert_array_equal(vol_a, vol_b)


class TestBatchSemantics:
    def test_empty_batch_is_noop(self, grid):
        vol = np.zeros(grid.shape)
        stamp_points_sym(vol, grid, KERNEL, np.empty((0, 3)), 1.0, WorkCounter())
        assert not vol.any()

    def test_batch_equals_sequential_singles(self, grid):
        pts = make_points(grid, 25, seed=4)
        batch = full_stamp(grid, pts.coords)
        singles = np.zeros(grid.shape)
        for row in pts.coords:
            stamp_point_sym(singles, grid, KERNEL, *row, 1.0, WorkCounter())
        np.testing.assert_allclose(batch, singles, rtol=1e-14, atol=1e-18)

    def test_counter_tracks_madds(self, grid):
        c = WorkCounter()
        coords = np.array([[12.0, 11.0, 13.0]])
        stamp_points_sym(np.zeros(grid.shape), grid, KERNEL, coords, 1.0, c)
        disk = (2 * grid.Hs + 1) ** 2
        bar = 2 * grid.Ht + 1
        assert c.madds == disk * bar
        assert c.spatial_evals == disk
        assert c.temporal_evals == bar


@given(
    ax=st.integers(1, 4),
    ay=st.integers(1, 4),
    at=st.integers(1, 4),
    n=st.integers(1, 30),
    seed=st.integers(0, 50),
)
@settings(max_examples=40, deadline=None)
def test_property_any_grid_partition_preserves_sum(ax, ay, at, n, seed):
    """Clipping through any A x B x C partition reproduces the whole."""
    grid = GridSpec(DomainSpec.from_voxels(18, 18, 18), hs=2.4, ht=2.1)
    pts = make_points(grid, n, seed=seed)
    whole = full_stamp(grid, pts.coords)
    pieces = np.zeros(grid.shape)
    from repro.parallel.partition import BlockDecomposition

    dec = BlockDecomposition(grid, ax, ay, at)
    for a, b, c in dec.iter_blocks():
        stamp_points_sym(
            pieces, grid, KERNEL, pts.coords, 1.0, WorkCounter(),
            clip=dec.block_window(a, b, c),
        )
    np.testing.assert_allclose(pieces, whole, rtol=1e-12, atol=1e-18)
