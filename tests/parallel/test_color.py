"""Tests for stencil-graph colouring."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DomainSpec, GridSpec
from repro.parallel.color import (
    greedy_coloring,
    load_order,
    natural_order,
    occupied_neighbor_map,
    parity_coloring,
    stencil_neighbors,
    validate_coloring,
)
from repro.parallel.partition import BlockDecomposition


def make_dec(A=4, B=4, C=4, G=40):
    grid = GridSpec(DomainSpec.from_voxels(G, G, G), hs=2.0, ht=2.0)
    return BlockDecomposition(grid, A, B, C)


class TestStencilNeighbors:
    def test_interior_block_has_26(self):
        dec = make_dec()
        assert len(list(stencil_neighbors(dec, 1, 1, 1))) == 26

    def test_corner_block_has_7(self):
        dec = make_dec()
        assert len(list(stencil_neighbors(dec, 0, 0, 0))) == 7

    def test_face_block_has_17(self):
        dec = make_dec()
        assert len(list(stencil_neighbors(dec, 0, 1, 1))) == 17

    def test_never_self(self):
        dec = make_dec()
        for a, b, c in dec.iter_blocks():
            assert (a, b, c) not in set(stencil_neighbors(dec, a, b, c))

    def test_symmetric(self):
        dec = make_dec(3, 3, 3)
        for a, b, c in dec.iter_blocks():
            for nb in stencil_neighbors(dec, a, b, c):
                assert (a, b, c) in set(stencil_neighbors(dec, *nb))

    def test_1d_decomposition(self):
        dec = make_dec(5, 1, 1)
        assert len(list(stencil_neighbors(dec, 2, 0, 0))) == 2
        assert len(list(stencil_neighbors(dec, 0, 0, 0))) == 1


class TestOccupiedNeighborMap:
    def test_only_occupied_appear(self):
        dec = make_dec(3, 3, 3)
        occupied = [dec.linear_id(0, 0, 0), dec.linear_id(2, 2, 2), dec.linear_id(0, 0, 1)]
        adj = occupied_neighbor_map(dec, occupied)
        assert set(adj) == set(occupied)
        # (0,0,0) and (0,0,1) adjacent; (2,2,2) isolated.
        assert adj[dec.linear_id(0, 0, 0)] == [dec.linear_id(0, 0, 1)]
        assert adj[dec.linear_id(2, 2, 2)] == []


class TestParityColoring:
    def test_proper_and_at_most_8_colors(self):
        dec = make_dec(4, 4, 4)
        occ = list(range(dec.n_blocks))
        col = parity_coloring(dec, occ)
        assert col.n_colors <= 8
        assert validate_coloring(dec, col, occ)

    def test_exact_color_formula(self):
        dec = make_dec(4, 4, 4)
        col = parity_coloring(dec, list(range(dec.n_blocks)))
        for bid, c in col.colors.items():
            a, b, cc = dec.block_coords(bid)
            assert c == 4 * (a % 2) + 2 * (b % 2) + (cc % 2)

    def test_classes_group_by_color(self):
        dec = make_dec(2, 2, 2)
        col = parity_coloring(dec, list(range(8)))
        classes = col.classes()
        assert len(classes) == 8
        assert all(len(cls) == 1 for cls in classes)


class TestGreedyColoring:
    def test_proper_on_full_grid(self):
        dec = make_dec(5, 4, 3)
        occ = list(range(dec.n_blocks))
        col = greedy_coloring(dec, occ, natural_order(occ))
        assert validate_coloring(dec, col, occ)

    def test_at_most_27_colors(self):
        """Greedy on a 27-stencil uses at most deg+1 = 27 colors."""
        dec = make_dec(6, 6, 6)
        occ = list(range(dec.n_blocks))
        col = greedy_coloring(dec, occ, natural_order(occ))
        assert col.n_colors <= 27

    def test_sparse_occupancy_fewer_colors(self):
        """Isolated occupied blocks all get colour 0."""
        dec = make_dec(6, 6, 6)
        occ = [dec.linear_id(a, a, a) for a in (0, 2, 4)]
        col = greedy_coloring(dec, occ, natural_order(occ))
        assert col.n_colors == 1

    def test_load_order_colors_heavy_first(self):
        dec = make_dec(4, 4, 4)
        occ = list(range(dec.n_blocks))
        loads = {bid: float(bid % 7) for bid in occ}
        order = load_order(occ, loads)
        col = greedy_coloring(dec, occ, order, method="load-aware")
        assert validate_coloring(dec, col, occ)
        # The single heaviest block in any neighbourhood gets colour 0.
        heaviest = order[0]
        assert col.colors[heaviest] == 0

    def test_rejects_non_permutation_order(self):
        dec = make_dec(2, 2, 2)
        occ = list(range(8))
        with pytest.raises(ValueError, match="permutation"):
            greedy_coloring(dec, occ, occ[:-1])

    def test_validate_rejects_improper(self):
        from repro.parallel.color import Coloring

        dec = make_dec(2, 2, 2)
        occ = list(range(8))
        bad = Coloring({bid: 0 for bid in occ}, 1, "bad")
        assert not validate_coloring(dec, bad, occ)


class TestLoadOrder:
    def test_non_increasing(self):
        loads = {1: 5.0, 2: 9.0, 3: 1.0, 4: 9.0}
        order = load_order([1, 2, 3, 4], loads)
        assert order == [2, 4, 1, 3]  # ties by id

    def test_natural_order_sorted(self):
        assert natural_order([5, 1, 3]) == [1, 3, 5]


@given(
    A=st.integers(2, 5),
    B=st.integers(2, 5),
    C=st.integers(2, 5),
    occ_fraction=st.floats(0.2, 1.0),
    seed=st.integers(0, 100),
    use_load=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_property_greedy_coloring_always_proper(A, B, C, occ_fraction, seed, use_load):
    dec = make_dec(A, B, C, G=30)
    rng = np.random.default_rng(seed)
    all_blocks = np.arange(dec.n_blocks)
    k = max(1, int(occ_fraction * dec.n_blocks))
    occ = sorted(rng.choice(all_blocks, size=k, replace=False).tolist())
    if use_load:
        loads = {bid: float(rng.integers(0, 100)) for bid in occ}
        order = load_order(occ, loads)
    else:
        order = natural_order(occ)
    col = greedy_coloring(dec, occ, order)
    assert validate_coloring(dec, col, occ)
    # Greedy never uses more colours than max degree + 1.
    adj = occupied_neighbor_map(dec, occ)
    max_deg = max((len(v) for v in adj.values()), default=0)
    assert col.n_colors <= max_deg + 1
