"""Unit tests for the REP replication planner (Section 5.2's loop)."""

from __future__ import annotations

import pytest

from repro.parallel.rep import plan_replication


def chain(n):
    succs = [[i + 1] if i + 1 < n else [] for i in range(n)]
    preds = [[i - 1] if i > 0 else [] for i in range(n)]
    return succs, preds


def independent(n):
    return [[] for _ in range(n)], [[] for _ in range(n)]


class TestPlanReplication:
    def test_no_replication_when_path_short(self):
        succs, preds = independent(8)
        reps, before, after = plan_replication(
            [1.0] * 8, [0.1] * 8, succs, preds, P=2, max_replicas=[100] * 8
        )
        # T1=8, threshold=2, Tinf=1 <= 2: nothing to do.
        assert reps == [1] * 8
        assert before == after == 1.0

    def test_hot_chain_gets_split(self):
        succs, preds = chain(3)
        w = [10.0, 10.0, 10.0]
        reps, before, after = plan_replication(
            w, [0.5] * 3, succs, preds, P=4, max_replicas=[50] * 3
        )
        assert before == pytest.approx(30.0)
        assert max(reps) > 1
        assert after < before

    def test_overhead_blocks_useless_splitting(self):
        """When the replica overhead exceeds the split gain, refuse."""
        succs, preds = chain(2)
        w = [4.0, 4.0]
        # Splitting into 2 gives w/2 + oh = 2 + 10 > 4: never worth it.
        reps, before, after = plan_replication(
            w, [10.0, 10.0], succs, preds, P=8, max_replicas=[50, 50]
        )
        assert reps == [1, 1]
        assert after == before

    def test_respects_max_replicas(self):
        succs, preds = chain(1)
        reps, _, _ = plan_replication(
            [100.0], [0.01], succs, preds, P=16, max_replicas=[3]
        )
        assert reps[0] <= 3

    def test_single_heavy_task_among_light(self):
        succs, preds = independent(5)
        w = [100.0, 1.0, 1.0, 1.0, 1.0]
        reps, before, after = plan_replication(
            w, [0.5] * 5, succs, preds, P=4, max_replicas=[1000] * 5
        )
        assert reps[0] > 1
        assert all(r == 1 for r in reps[1:])
        # Target: Tinf <= T1/(2P) = 104/8 = 13.
        assert after <= 13.0 + 1e-9

    def test_terminates_on_zero_weights(self):
        succs, preds = independent(3)
        reps, before, after = plan_replication(
            [0.0, 0.0, 0.0], [0.1] * 3, succs, preds, P=4, max_replicas=[5] * 3
        )
        assert reps == [1, 1, 1]

    def test_input_validation(self):
        with pytest.raises(ValueError, match="mismatched"):
            plan_replication([1.0], [0.1, 0.2], [[]], [[]], P=2, max_replicas=[1])

    def test_monotone_nonincreasing_tinf(self):
        """The planner never makes the critical path longer."""
        succs, preds = chain(5)
        w = [5.0, 8.0, 3.0, 8.0, 5.0]
        reps, before, after = plan_replication(
            w, [0.2] * 5, succs, preds, P=8, max_replicas=[100] * 5
        )
        assert after <= before + 1e-12
