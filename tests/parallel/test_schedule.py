"""Tests for DAG construction, critical paths, and list scheduling."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DomainSpec, GridSpec
from repro.parallel.color import (
    greedy_coloring,
    natural_order,
    occupied_neighbor_map,
    parity_coloring,
)
from repro.parallel.partition import BlockDecomposition
from repro.parallel.schedule import (
    BandwidthModel,
    TaskGraph,
    barrier_schedule,
    build_task_graph,
    critical_path,
    grahams_bound,
    list_schedule,
    saturated_makespan,
)


def chain(weights):
    n = len(weights)
    succs = [[i + 1] if i + 1 < n else [] for i in range(n)]
    preds = [[i - 1] if i > 0 else [] for i in range(n)]
    return TaskGraph(list(weights), succs, preds)


def independent(weights):
    n = len(weights)
    return TaskGraph(list(weights), [[] for _ in range(n)], [[] for _ in range(n)])


class TestTaskGraph:
    def test_topological_order_valid(self):
        g = chain([1, 1, 1, 1])
        order = g.topological_order()
        assert order == [0, 1, 2, 3]

    def test_cycle_detected(self):
        g = TaskGraph([1, 1], [[1], [0]], [[1], [0]])
        with pytest.raises(ValueError, match="cycle"):
            g.topological_order()

    def test_total_weight(self):
        assert chain([1.5, 2.5]).total_weight == 4.0


class TestCriticalPath:
    def test_chain_is_whole_graph(self):
        g = chain([1, 2, 3])
        length, path = critical_path(g)
        assert length == 6
        assert path == [0, 1, 2]

    def test_independent_is_max(self):
        g = independent([4, 7, 2])
        length, path = critical_path(g)
        assert length == 7
        assert path == [1]

    def test_diamond(self):
        #   0
        #  / \
        # 1   2
        #  \ /
        #   3
        g = TaskGraph(
            [1, 5, 2, 1],
            [[1, 2], [3], [3], []],
            [[], [0], [0], [1, 2]],
        )
        length, path = critical_path(g)
        assert length == 7
        assert path == [0, 1, 3]

    def test_empty_graph(self):
        g = TaskGraph([], [], [])
        assert critical_path(g) == (0.0, [])


class TestListSchedule:
    def test_serial_on_one_proc(self):
        g = independent([1, 2, 3])
        res = list_schedule(g, 1)
        assert res.makespan == pytest.approx(6.0)

    def test_perfect_split_independent(self):
        g = independent([2, 2, 2, 2])
        res = list_schedule(g, 2)
        assert res.makespan == pytest.approx(4.0)

    def test_chain_cannot_parallelise(self):
        g = chain([1, 1, 1, 1])
        res = list_schedule(g, 8)
        assert res.makespan == pytest.approx(4.0)

    def test_respects_dependencies(self):
        g = TaskGraph(
            [1, 1, 1],
            [[2], [2], []],
            [[], [], [0, 1]],
        )
        res = list_schedule(g, 2)
        assert res.start[2] >= max(res.end[0], res.end[1])

    def test_no_processor_oversubscription(self):
        rng = np.random.default_rng(0)
        g = independent(rng.uniform(0.5, 2.0, size=20).tolist())
        P = 3
        res = list_schedule(g, P)
        events = sorted(
            [(s, 1) for s in res.start] + [(e, -1) for e in res.end]
        )
        live = 0
        for _, d in events:
            live += d
            assert live <= P

    def test_grahams_bound_holds(self):
        rng = np.random.default_rng(1)
        for trial in range(10):
            n = 30
            w = rng.uniform(0.1, 3.0, size=n).tolist()
            # Random DAG: edges i -> j for i < j with prob 0.15.
            succs = [[] for _ in range(n)]
            preds = [[] for _ in range(n)]
            for i in range(n):
                for j in range(i + 1, n):
                    if rng.random() < 0.15:
                        succs[i].append(j)
                        preds[j].append(i)
            g = TaskGraph(w, succs, preds)
            tinf, _ = critical_path(g)
            for P in (1, 2, 4, 8):
                res = list_schedule(g, P)
                assert res.makespan <= grahams_bound(g.total_weight, tinf, P) + 1e-9
                assert res.makespan >= max(tinf, g.total_weight / P) - 1e-9

    def test_priority_changes_order(self):
        g = independent([1.0, 5.0, 1.0])
        res = list_schedule(g, 1, priority=lambda v: (-g.weights[v], v))
        assert res.start[1] == 0.0  # heaviest first

    def test_efficiency_bounds(self):
        g = independent([1, 1, 1, 1])
        res = list_schedule(g, 2)
        assert 0.0 < res.efficiency <= 1.0

    def test_rejects_bad_P(self):
        with pytest.raises(ValueError):
            list_schedule(independent([1]), 0)


class TestBarrierSchedule:
    def test_single_class_equals_greedy(self):
        ms = barrier_schedule([[2, 2, 2, 2]], 2)
        assert ms == pytest.approx(4.0)

    def test_barriers_add_up(self):
        ms = barrier_schedule([[3], [3], [3]], 4)
        assert ms == pytest.approx(9.0)

    def test_imbalanced_class_dominated_by_heaviest(self):
        ms = barrier_schedule([[10, 1, 1, 1]], 4)
        assert ms == pytest.approx(10.0)

    def test_lpt_within_graham_bounds(self):
        """Both orders obey Graham's greedy bound sum/P + max; LPT is *not*
        pointwise better than index order (the classic scheduling anomaly),
        so only the bound — not dominance — is asserted."""
        rng = np.random.default_rng(2)
        P = 3
        for _ in range(20):
            ws = rng.uniform(0.1, 5.0, size=9).tolist()
            lower = max(max(ws), sum(ws) / P)  # OPT >= both
            for lpt in (False, True):
                ms = barrier_schedule([ws], P, lpt=lpt)
                assert lower - 1e-9 <= ms <= sum(ws) / P + max(ws) + 1e-9

    def test_barrier_never_faster_than_dag(self):
        """Barriers over-constrain: the paper's motivation for PD-SCHED."""
        dec = BlockDecomposition(
            GridSpec(DomainSpec.from_voxels(40, 40, 40), hs=2.0, ht=2.0), 4, 4, 4
        )
        occ = list(range(dec.n_blocks))
        rng = np.random.default_rng(3)
        weights = {bid: float(rng.uniform(0.1, 2.0)) for bid in occ}
        coloring = parity_coloring(dec, occ)
        adj = occupied_neighbor_map(dec, occ)
        graph, id_map = build_task_graph(coloring, adj, weights)
        classes = coloring.classes()
        class_w = [[weights[b] for b in cls] for cls in classes]
        for P in (2, 4, 8):
            dag = list_schedule(graph, P).makespan
            barrier = barrier_schedule(class_w, P)
            assert dag <= barrier + 1e-9

    def test_empty_classes_skipped(self):
        assert barrier_schedule([[], [1.0], []], 2) == pytest.approx(1.0)


class TestBuildTaskGraph:
    def test_edges_oriented_low_to_high(self):
        dec = BlockDecomposition(
            GridSpec(DomainSpec.from_voxels(30, 30, 30), hs=2.0, ht=2.0), 3, 3, 3
        )
        occ = list(range(dec.n_blocks))
        coloring = greedy_coloring(dec, occ, natural_order(occ))
        adj = occupied_neighbor_map(dec, occ)
        graph, id_map = build_task_graph(coloring, adj, {b: 1.0 for b in occ})
        inv = {v: k for k, v in id_map.items()}
        for u in range(graph.n):
            for v in graph.succs[u]:
                assert coloring.colors[inv[u]] < coloring.colors[inv[v]]

    def test_improper_coloring_rejected(self):
        from repro.parallel.color import Coloring

        dec = BlockDecomposition(
            GridSpec(DomainSpec.from_voxels(20, 20, 20), hs=2.0, ht=2.0), 2, 2, 2
        )
        occ = list(range(8))
        bad = Coloring({b: 0 for b in occ}, 1, "bad")
        adj = occupied_neighbor_map(dec, occ)
        with pytest.raises(ValueError, match="improper"):
            build_task_graph(bad, adj, {b: 1.0 for b in occ})

    def test_acyclic(self):
        dec = BlockDecomposition(
            GridSpec(DomainSpec.from_voxels(40, 40, 40), hs=2.0, ht=2.0), 4, 4, 4
        )
        occ = list(range(dec.n_blocks))
        coloring = parity_coloring(dec, occ)
        adj = occupied_neighbor_map(dec, occ)
        graph, _ = build_task_graph(coloring, adj, {b: 1.0 for b in occ})
        graph.topological_order()  # raises on cycle


class TestBandwidthSaturation:
    def test_cap_limits_scaling(self):
        ws = [1.0] * 16
        assert saturated_makespan(ws, 16, BandwidthModel(cap=3.0)) == pytest.approx(
            16.0 / 3.0
        )

    def test_below_cap_scales_normally(self):
        ws = [1.0] * 4
        assert saturated_makespan(ws, 2, BandwidthModel(cap=3.0)) == pytest.approx(2.0)

    def test_single_task_floor(self):
        assert saturated_makespan([5.0, 0.1], 16, BandwidthModel(cap=4.0)) == 5.0

    def test_empty(self):
        assert saturated_makespan([], 4) == 0.0

    def test_rejects_bad_P(self):
        with pytest.raises(ValueError):
            saturated_makespan([1.0], 0)


@given(
    n=st.integers(1, 25),
    P=st.integers(1, 8),
    seed=st.integers(0, 1000),
    edge_p=st.floats(0.0, 0.4),
)
@settings(max_examples=80, deadline=None)
def test_property_list_schedule_within_graham(n, P, seed, edge_p):
    """Graham's bound and the trivial lower bounds hold for any DAG."""
    rng = np.random.default_rng(seed)
    w = rng.uniform(0.01, 2.0, size=n).tolist()
    succs = [[] for _ in range(n)]
    preds = [[] for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < edge_p:
                succs[i].append(j)
                preds[j].append(i)
    g = TaskGraph(w, succs, preds)
    tinf, _ = critical_path(g)
    res = list_schedule(g, P)
    T1 = g.total_weight
    assert res.makespan <= grahams_bound(T1, tinf, P) + 1e-9
    assert res.makespan >= max(tinf, T1 / P) - 1e-9
    # All tasks scheduled exactly once, no overlap per processor.
    per_proc: dict = {}
    for v in range(n):
        per_proc.setdefault(res.proc[v], []).append((res.start[v], res.end[v]))
    for spans in per_proc.values():
        spans.sort()
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert s2 >= e1 - 1e-12
