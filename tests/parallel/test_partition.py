"""Tests for block decompositions and point binning."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DomainSpec, GridSpec, PointSet
from repro.parallel.partition import BlockDecomposition

from tests.helpers import make_clustered_points, make_points


@pytest.fixture
def grid():
    return GridSpec(DomainSpec.from_voxels(40, 36, 50), hs=3.0, ht=2.0)


@pytest.fixture
def dec(grid):
    return BlockDecomposition(grid, 4, 3, 5)


class TestGeometry:
    def test_blocks_tile_grid_exactly(self, grid, dec):
        cover = np.zeros(grid.shape, dtype=int)
        for a, b, c in dec.iter_blocks():
            w = dec.block_window(a, b, c)
            cover[w.slices()] += 1
        assert (cover == 1).all()

    def test_block_sizes_differ_by_at_most_one(self, grid):
        dec = BlockDecomposition(grid, 7, 5, 9)
        for bounds, G, k in ((dec.xb, 40, 7), (dec.yb, 36, 5), (dec.tb, 50, 9)):
            sizes = np.diff(bounds)
            assert sizes.sum() == G
            assert sizes.max() - sizes.min() <= 1

    def test_linear_id_round_trip(self, dec):
        for a, b, c in dec.iter_blocks():
            assert dec.block_coords(dec.linear_id(a, b, c)) == (a, b, c)

    def test_halo_window_grows_by_bandwidth(self, grid, dec):
        w = dec.block_window(1, 1, 1)
        h = dec.halo_window(1, 1, 1)
        assert h.x0 == w.x0 - grid.Hs and h.x1 == w.x1 + grid.Hs
        assert h.t0 == w.t0 - grid.Ht and h.t1 == w.t1 + grid.Ht

    def test_halo_clipped_at_boundary(self, grid, dec):
        h = dec.halo_window(0, 0, 0)
        assert h.x0 == 0 and h.y0 == 0 and h.t0 == 0

    def test_rejects_more_blocks_than_voxels(self, grid):
        with pytest.raises(ValueError, match="more blocks"):
            BlockDecomposition(grid, 41, 1, 1)

    def test_rejects_nonpositive_counts(self, grid):
        with pytest.raises(ValueError):
            BlockDecomposition(grid, 0, 1, 1)


class TestOwnership:
    def test_every_point_owned_exactly_once(self, grid, dec):
        pts = make_points(grid, 500, seed=1)
        binning = dec.bin_points_owner(pts)
        assert binning.replicas == pts.n
        assert binning.counts().sum() == pts.n

    def test_owner_contains_point_voxel(self, grid, dec):
        pts = make_points(grid, 300, seed=2)
        owners = dec.owners(pts)
        for i, (x, y, t) in enumerate(pts):
            X, Y, T = grid.voxel_of(x, y, t)
            a, b, c = dec.block_coords(int(owners[i]))
            assert dec.block_window(a, b, c).contains_voxel(X, Y, T)

    def test_points_in_blocks_partition_indices(self, grid, dec):
        pts = make_points(grid, 400, seed=3)
        binning = dec.bin_points_owner(pts)
        seen = np.concatenate(
            [binning.points_in(k) for k in range(dec.n_blocks)]
        )
        assert sorted(seen) == list(range(pts.n))

    def test_occupied_blocks_nonempty(self, grid, dec):
        pts = make_clustered_points(grid, 200, seed=4)
        binning = dec.bin_points_owner(pts)
        for bid in binning.occupied():
            assert len(binning.points_in(int(bid))) > 0


class TestReplication:
    def test_replication_covers_window_blocks(self, grid, dec):
        pts = make_points(grid, 150, seed=5)
        binning = dec.bin_points_replicated(pts)
        for i, (x, y, t) in enumerate(pts):
            win = grid.point_window(x, y, t)
            ra, rb, rc = dec.blocks_intersecting(win)
            expect = {
                dec.linear_id(a, b, c) for a in ra for b in rb for c in rc
            }
            got = {
                k
                for k in range(dec.n_blocks)
                if i in set(binning.points_in(k).tolist())
            }
            assert got == expect

    def test_replication_factor_at_least_one(self, grid, dec):
        pts = make_points(grid, 100, seed=6)
        binning = dec.bin_points_replicated(pts)
        assert binning.replication_factor(pts.n) >= 1.0

    def test_finer_decomposition_more_replication(self, grid):
        """Figure 9's driver: overdecomposition inflates replication."""
        pts = make_points(grid, 300, seed=7)
        coarse = BlockDecomposition(grid, 2, 2, 2).bin_points_replicated(pts)
        fine = BlockDecomposition(grid, 10, 9, 12).bin_points_replicated(pts)
        assert fine.replication_factor(pts.n) > coarse.replication_factor(pts.n)

    def test_single_block_no_replication(self, grid):
        pts = make_points(grid, 200, seed=8)
        dec1 = BlockDecomposition(grid, 1, 1, 1)
        binning = dec1.bin_points_replicated(pts)
        assert binning.replication_factor(pts.n) == 1.0

    def test_blocks_intersecting_clamps_to_grid(self, grid, dec):
        win = grid.point_window(0.2, 0.2, 0.2)
        ra, rb, rc = dec.blocks_intersecting(win)
        assert ra.start == 0 and rb.start == 0 and rc.start == 0


class TestPDConstraint:
    def test_adjustment_enforces_min_block(self, grid):
        dec = BlockDecomposition.adjusted_for_pd(grid, 64, 64, 64)
        assert dec.satisfies_pd_constraint()
        mx, my, mt = dec.min_block_shape()
        assert mx >= 2 * grid.Hs + 1
        assert my >= 2 * grid.Hs + 1
        assert mt >= 2 * grid.Ht + 1

    def test_adjustment_keeps_valid_requests(self, grid):
        dec = BlockDecomposition.adjusted_for_pd(grid, 2, 2, 2)
        assert dec.shape == (2, 2, 2)

    def test_huge_bandwidth_collapses_to_single_block(self):
        grid = GridSpec(DomainSpec.from_voxels(20, 20, 20), hs=15.0, ht=15.0)
        dec = BlockDecomposition.adjusted_for_pd(grid, 8, 8, 8)
        assert dec.shape == (1, 1, 1)

    def test_same_parity_blocks_never_share_cylinder_voxels(self, grid):
        """The safety property of Figure 5, checked exhaustively."""
        dec = BlockDecomposition.adjusted_for_pd(grid, 64, 64, 64)
        pts = make_points(grid, 200, seed=9)
        binning = dec.bin_points_owner(pts)
        # For each pair of same-parity distinct blocks, point windows of
        # their members must be disjoint.
        windows = {}
        for k in binning.occupied():
            a, b, c = dec.block_coords(int(k))
            idx = binning.points_in(int(k))
            wins = [grid.point_window(*pts.coords[i]) for i in idx]
            windows[(a, b, c)] = wins
        keys = list(windows)
        for i, k1 in enumerate(keys):
            for k2 in keys[i + 1 :]:
                same_parity = all((u % 2) == (v % 2) for u, v in zip(k1, k2))
                adjacent = all(abs(u - v) <= 1 for u, v in zip(k1, k2))
                if not same_parity or adjacent:
                    continue
                for w1 in windows[k1]:
                    for w2 in windows[k2]:
                        assert w1.intersect(w2).empty


@given(
    A=st.integers(1, 9),
    B=st.integers(1, 9),
    C=st.integers(1, 9),
    gx=st.integers(9, 50),
    gy=st.integers(9, 50),
    gt=st.integers(9, 50),
)
@settings(max_examples=80, deadline=None)
def test_property_blocks_always_tile(A, B, C, gx, gy, gt):
    grid = GridSpec(DomainSpec.from_voxels(gx, gy, gt), hs=2.0, ht=2.0)
    dec = BlockDecomposition(grid, A, B, C)
    total = 0
    for a, b, c in dec.iter_blocks():
        total += dec.block_window(a, b, c).volume
    assert total == grid.n_voxels


@given(
    n=st.integers(1, 60),
    A=st.integers(1, 6),
    seed=st.integers(0, 10),
)
@settings(max_examples=60, deadline=None)
def test_property_owner_binning_is_partition(n, A, seed):
    grid = GridSpec(DomainSpec.from_voxels(30, 30, 30), hs=2.5, ht=2.5)
    dec = BlockDecomposition(grid, A, A, A)
    pts = make_points(grid, n, seed=seed)
    binning = dec.bin_points_owner(pts)
    assert binning.counts().sum() == n
    assert binning.replication_factor(n) == 1.0
