"""Threads-scaling smoke: shard correctness under *real* concurrency.

The tier-1 suite runs everywhere, including single-CPU containers where
the threaded stamping path executes its tasks effectively one at a time —
so races between shard workers, or between slab reducers reading the
shard buffers, would never be exercised.  These tests are skipped below
two CPUs and run in CI's dedicated multi-core job (and in tier-1 on any
multi-core machine), hammering the bbox-shard path with enough work that
the GIL-releasing NumPy kernels genuinely overlap.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.algorithms.pb_sym import pb_sym
from repro.core import DomainSpec, GridSpec, PointSet, WorkCounter
from repro.core.kernels import get_kernel
from repro.core.stamping import stamp_batch
from repro.parallel.executors import resolve_shard_count, run_threaded_stamping

_CPUS = (
    len(os.sched_getaffinity(0))
    if hasattr(os, "sched_getaffinity")
    else (os.cpu_count() or 1)
)

multicore = pytest.mark.skipif(
    _CPUS < 2, reason="threads-scaling smoke needs >= 2 CPUs"
)


@pytest.fixture
def grid():
    return GridSpec(DomainSpec.from_voxels(48, 48, 32), hs=3.0, ht=2.5)


def _clustered(grid, n, seed):
    rng = np.random.default_rng(seed)
    span = np.array([grid.domain.gx, grid.domain.gy, grid.domain.gt])
    centers = rng.uniform(0.2 * span, 0.8 * span, size=(4, 3))
    pts = centers[rng.integers(0, 4, size=n)] + rng.normal(
        0, 0.06, size=(n, 3)
    ) * span
    return np.clip(pts, 0, span * (1 - 1e-9))


@multicore
class TestRealConcurrency:
    def test_bbox_shards_match_serial_repeatedly(self, grid):
        """Several concurrent runs, all bit-compared against one serial run.

        Repetition matters: a racy reduction would be intermittent, and a
        single lucky pass proves nothing.
        """
        kern = get_kernel("epanechnikov")
        coords = _clustered(grid, 8000, seed=0)
        serial = np.zeros(grid.shape)
        stamp_batch(serial, grid, kern, coords, 1.0, WorkCounter())
        P = min(4, _CPUS)
        for rep in range(3):
            vol = np.zeros(grid.shape)
            c = WorkCounter()
            run_threaded_stamping(vol, grid, kern, coords, 1.0, c, P)
            np.testing.assert_allclose(
                vol, serial, rtol=1e-12, atol=1e-18,
                err_msg=f"threads diverged from serial on repetition {rep}",
            )
            assert c.stamp_batches == P
            assert c.shard_bbox_cells < P * grid.n_voxels

    def test_auto_shard_count_uses_the_cores(self, grid):
        assert resolve_shard_count("auto") == _CPUS
        pts = PointSet(_clustered(grid, 3000, seed=1))
        serial = pb_sym(pts, grid)
        auto = pb_sym(pts, grid, P="auto", backend="threads")
        np.testing.assert_allclose(
            auto.data, serial.data, rtol=1e-12, atol=1e-18
        )
        assert auto.meta["P"] == _CPUS

    def test_concurrent_clipped_shards(self, grid):
        from repro.core import VoxelWindow

        kern = get_kernel("quartic")
        coords = _clustered(grid, 4000, seed=2)
        clip = VoxelWindow(5, 40, 6, 42, 4, 28)
        serial = np.zeros(grid.shape)
        stamp_batch(serial, grid, kern, coords, 1.0, WorkCounter(), clip=clip)
        vol = np.zeros(grid.shape)
        run_threaded_stamping(
            vol, grid, kern, coords, 1.0, WorkCounter(), min(4, _CPUS),
            clip=clip,
        )
        np.testing.assert_allclose(vol, serial, rtol=1e-12, atol=1e-18)
