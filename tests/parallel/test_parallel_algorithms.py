"""Integration tests for the five parallel strategies.

The non-negotiable property: every strategy, on every backend, at every
decomposition and worker count, computes *exactly* the PB-SYM volume —
parallelisation reorganises the additions but never changes them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import pb_sym
from repro.core import DomainSpec, GridSpec, PointSet, WorkCounter
from repro.parallel import (
    MemoryBudgetExceeded,
    pb_sym_dd,
    pb_sym_dr,
    pb_sym_pd,
    pb_sym_pd_rep,
    pb_sym_pd_sched,
)

from tests.helpers import make_clustered_points, make_points

PARALLEL = [pb_sym_dr, pb_sym_dd, pb_sym_pd, pb_sym_pd_sched, pb_sym_pd_rep]
DECOMPOSED = [pb_sym_dd, pb_sym_pd, pb_sym_pd_sched, pb_sym_pd_rep]


@pytest.fixture(scope="module")
def grid():
    return GridSpec(DomainSpec.from_voxels(36, 32, 44), hs=2.8, ht=2.3)


@pytest.fixture(scope="module")
def pts(grid):
    return make_clustered_points(grid, 350, seed=17)


@pytest.fixture(scope="module")
def reference(grid, pts):
    return pb_sym(pts, grid).data


class TestEquivalence:
    @pytest.mark.parametrize("algo", PARALLEL)
    @pytest.mark.parametrize("backend", ["serial", "simulated", "threads"])
    def test_matches_pb_sym(self, algo, backend, grid, pts, reference):
        kwargs = {"P": 3, "backend": backend}
        if algo is not pb_sym_dr:
            kwargs["decomposition"] = (4, 4, 4)
        res = algo(pts, grid, **kwargs)
        np.testing.assert_allclose(res.data, reference, rtol=1e-12, atol=1e-18)

    @pytest.mark.parametrize("algo", PARALLEL)
    @pytest.mark.parametrize("P", [1, 2, 5, 8])
    def test_any_worker_count(self, algo, P, grid, pts, reference):
        res = algo(pts, grid, P=P, backend="simulated")
        np.testing.assert_allclose(res.data, reference, rtol=1e-12, atol=1e-18)

    @pytest.mark.parametrize("algo", DECOMPOSED)
    @pytest.mark.parametrize("dec", [(1, 1, 1), (2, 2, 2), (8, 8, 8), (16, 16, 16), (5, 3, 7)])
    def test_any_decomposition(self, algo, dec, grid, pts, reference):
        res = algo(pts, grid, P=4, decomposition=dec, backend="simulated")
        np.testing.assert_allclose(res.data, reference, rtol=1e-12, atol=1e-18)

    @pytest.mark.parametrize("algo", DECOMPOSED)
    def test_threads_with_fine_decomposition(self, algo, grid, pts, reference):
        res = algo(pts, grid, P=4, decomposition=(6, 6, 6), backend="threads")
        np.testing.assert_allclose(res.data, reference, rtol=1e-12, atol=1e-18)

    @pytest.mark.parametrize("algo", PARALLEL)
    def test_single_point(self, algo, grid):
        one = PointSet(np.array([[18.0, 16.0, 22.0]]))
        ref = pb_sym(one, grid).data
        res = algo(one, grid, P=4, backend="simulated")
        np.testing.assert_allclose(res.data, ref, rtol=1e-12, atol=1e-18)

    @pytest.mark.parametrize("algo", PARALLEL)
    def test_boundary_points(self, algo, grid, reference):
        edge = PointSet(
            np.array(
                [
                    [0.05, 0.05, 0.05],
                    [35.9, 31.9, 43.9],
                    [0.1, 31.9, 22.0],
                    [18.0, 0.1, 43.9],
                ]
            )
        )
        ref = pb_sym(edge, grid).data
        res = algo(edge, grid, P=3, backend="simulated")
        np.testing.assert_allclose(res.data, ref, rtol=1e-12, atol=1e-18)


class TestValidation:
    @pytest.mark.parametrize("algo", PARALLEL)
    def test_rejects_bad_P(self, algo, grid, pts):
        with pytest.raises(ValueError, match="P must be"):
            algo(pts, grid, P=0)

    @pytest.mark.parametrize("algo", PARALLEL)
    def test_rejects_unknown_backend(self, algo, grid, pts):
        with pytest.raises(ValueError, match="backend"):
            algo(pts, grid, P=2, backend="quantum")

    def test_pd_rejects_unknown_scheduler(self, grid, pts):
        from repro.parallel.pd import run_point_decomposition

        with pytest.raises(ValueError, match="scheduler"):
            run_point_decomposition(
                pts, grid, decomposition=(2, 2, 2), P=2, backend="simulated",
                scheduler="magic", kernel="epanechnikov", counter=None,
                timer=None, bandwidth=None, algorithm_name="x",
            )


class TestMemoryBudget:
    def test_dr_oom_when_replicas_do_not_fit(self, grid, pts):
        budget = int(3.5 * grid.grid_bytes)  # fits 3 copies, not 9
        pb_sym_dr(pts, grid, P=2, memory_budget_bytes=budget)  # 3 copies: ok
        with pytest.raises(MemoryBudgetExceeded, match="PB-SYM-DR"):
            pb_sym_dr(pts, grid, P=8, memory_budget_bytes=budget)

    def test_dr_error_reports_sizes(self, grid, pts):
        with pytest.raises(MemoryBudgetExceeded) as ei:
            pb_sym_dr(pts, grid, P=4, memory_budget_bytes=grid.grid_bytes)
        assert ei.value.needed > ei.value.budget

    def test_rep_oom_at_coarse_decomposition(self, grid, pts):
        """With one block, REP degenerates to DR and exceeds tight budgets
        (Figure 14's Flu-Hr failures)."""
        budget = int(1.5 * grid.grid_bytes)
        with pytest.raises(MemoryBudgetExceeded, match="PB-SYM-PD-REP"):
            pb_sym_pd_rep(
                pts, grid, P=8, decomposition=(1, 1, 1),
                memory_budget_bytes=budget,
            )

    def test_rep_fine_needs_less_memory_than_coarse(self, grid, pts, reference):
        """Fine decompositions replicate small halos; coarse ones replicate
        whole-domain-sized blocks (Figure 14's memory cliff)."""
        fine = pb_sym_pd_rep(pts, grid, P=8, decomposition=(16, 16, 16))
        coarse = pb_sym_pd_rep(pts, grid, P=8, decomposition=(1, 1, 1))
        assert fine.meta["extra_bytes"] < coarse.meta["extra_bytes"]
        np.testing.assert_allclose(fine.data, reference, rtol=1e-12, atol=1e-18)

    def test_no_budget_means_no_check(self, grid, pts):
        pb_sym_dr(pts, grid, P=8, memory_budget_bytes=None)  # must not raise


class TestDDOverheads:
    def test_replication_factor_grows_with_decomposition(self, grid, pts):
        r = {}
        for k in (1, 2, 4, 8):
            res = pb_sym_dd(pts, grid, P=2, decomposition=(k, k, k))
            r[k] = res.meta["replication_factor"]
        assert r[1] == 1.0
        assert r[8] > r[4] > r[2] > 1.0

    def test_extra_work_matches_replication(self, grid, pts):
        """DD does more kernel work than PB-SYM, proportional to cut
        cylinders; at 1x1x1 the work is identical."""
        base = WorkCounter()
        pb_sym(pts, grid, counter=base)
        c1 = WorkCounter()
        pb_sym_dd(pts, grid, P=2, decomposition=(1, 1, 1), counter=c1)
        assert c1.spatial_evals == base.spatial_evals
        c8 = WorkCounter()
        pb_sym_dd(pts, grid, P=2, decomposition=(8, 8, 8), counter=c8)
        assert c8.spatial_evals > base.spatial_evals

    def test_clustered_data_imbalanced_tasks(self, grid):
        pts = make_clustered_points(grid, 400, k=2, seed=3)
        res = pb_sym_dd(pts, grid, P=4, decomposition=(4, 4, 4))
        ts = [t for t in res.meta["task_seconds"] if t > 0]
        assert max(ts) > 3 * (sum(ts) / len(ts))  # heavy hot-spot tasks


class TestPDProperties:
    def test_decomposition_adjusted_to_bandwidth(self, grid, pts):
        res = pb_sym_pd(pts, grid, P=2, decomposition=(64, 64, 64))
        A, B, C = res.meta["decomposition"]
        assert A <= grid.Gx // (2 * grid.Hs + 1)
        assert C <= grid.Gt // (2 * grid.Ht + 1)
        assert res.meta["requested_decomposition"] == (64, 64, 64)

    def test_parity_uses_at_most_8_colors(self, grid, pts):
        res = pb_sym_pd(pts, grid, P=2, decomposition=(4, 4, 4))
        assert res.meta["n_colors"] <= 8

    def test_sched_critical_path_not_longer(self, grid):
        """PD-SCHED's load-aware colouring should not lengthen the
        critical path (Figure 12: marginal decrease)."""
        pts = make_clustered_points(grid, 500, k=3, seed=5)
        r_pd = pb_sym_pd(pts, grid, P=4, decomposition=(8, 8, 8))
        r_sc = pb_sym_pd_sched(pts, grid, P=4, decomposition=(8, 8, 8))
        # Compare *ratios* (measured times differ slightly run to run).
        assert (
            r_sc.meta["critical_path_ratio"]
            <= r_pd.meta["critical_path_ratio"] * 1.35
        )

    def test_work_efficient_no_extra_kernel_work(self, grid, pts):
        """PD never inflates kernel work (unlike DD/DR): work-efficiency,
        the whole point of Section 5."""
        base = WorkCounter()
        pb_sym(pts, grid, counter=base)
        for algo in (pb_sym_pd, pb_sym_pd_sched):
            c = WorkCounter()
            algo(pts, grid, P=4, decomposition=(8, 8, 8), counter=c)
            assert c.spatial_evals == base.spatial_evals
            assert c.temporal_evals == base.temporal_evals

    def test_simulated_makespan_within_graham(self, grid, pts):
        res = pb_sym_pd_sched(pts, grid, P=4, decomposition=(8, 8, 8))
        compute_ms = res.meta["phase_makespans"]["compute"]
        assert compute_ms <= res.meta["graham_bound"] * 1.05 + 1e-6
        assert compute_ms >= res.meta["Tinf"] - 1e-6


class TestREPProperties:
    def test_replication_happens_on_hot_chain(self, grid):
        """Heavily clustered points force a long chain; REP must split it."""
        pts = make_clustered_points(grid, 600, k=1, seed=8)
        res = pb_sym_pd_rep(pts, grid, P=8, decomposition=(8, 8, 8))
        assert res.meta["blocks_replicated"] >= 1
        assert res.meta["max_replication"] >= 2
        assert res.meta["tinf_planned_after"] <= res.meta["tinf_planned_before"]

    def test_uniform_low_parallelism_no_replication_needed(self, grid):
        pts = make_points(grid, 200, seed=9)
        res = pb_sym_pd_rep(pts, grid, P=1, decomposition=(4, 4, 4))
        # P=1: threshold T1/2 is huge, so nothing should be replicated.
        assert res.meta["blocks_replicated"] == 0

    def test_extra_bytes_reported(self, grid):
        pts = make_clustered_points(grid, 600, k=1, seed=8)
        res = pb_sym_pd_rep(pts, grid, P=8, decomposition=(8, 8, 8))
        if res.meta["blocks_replicated"]:
            assert res.meta["extra_bytes"] > 0


class TestMetaAndPhases:
    @pytest.mark.parametrize("algo", PARALLEL)
    def test_meta_has_makespan_and_P(self, algo, grid, pts):
        res = algo(pts, grid, P=2, backend="simulated")
        assert res.meta["P"] == 2
        assert res.meta["makespan"] > 0
        assert "phase_makespans" in res.meta

    def test_dr_counts_replica_inits(self, grid, pts):
        c = WorkCounter()
        pb_sym_dr(pts, grid, P=4, counter=c)
        assert c.init_writes == 4 * grid.n_voxels  # P private volumes
        assert c.reduce_adds == 4 * grid.n_voxels  # P-way reduction

    def test_simulated_makespan_shrinks_with_P(self, grid):
        """On a compute-heavy instance more processors means a shorter
        simulated makespan (until the critical path floor)."""
        pts = make_points(grid, 800, seed=10)
        m1 = pb_sym_pd_sched(pts, grid, P=1, decomposition=(8, 8, 8)).meta["makespan"]
        m4 = pb_sym_pd_sched(pts, grid, P=4, decomposition=(8, 8, 8)).meta["makespan"]
        assert m4 < m1
