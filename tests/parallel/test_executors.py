"""Tests for the execution backends (serial / threaded / simulated)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.parallel.executors import (
    ExecTask,
    MemoryBudgetExceeded,
    check_memory_budget,
    run_serial,
    run_threaded,
    simulate_from_measured,
)
from repro.parallel.schedule import TaskGraph


def make_graph(n, edges):
    succs = [[] for _ in range(n)]
    preds = [[] for _ in range(n)]
    for u, v in edges:
        succs[u].append(v)
        preds[v].append(u)
    return TaskGraph([1.0] * n, succs, preds)


class TestMemoryBudget:
    def test_within_budget_passes(self):
        check_memory_budget(100, 200, "x")

    def test_none_budget_always_passes(self):
        check_memory_budget(10**18, None, "x")

    def test_exceeded_raises_with_sizes(self):
        with pytest.raises(MemoryBudgetExceeded) as ei:
            check_memory_budget(2_000_000, 1_000_000, "DR test")
        assert "DR test" in str(ei.value)
        assert ei.value.needed == 2_000_000
        assert ei.value.budget == 1_000_000


class TestRunSerial:
    def test_executes_all_and_measures(self):
        log = []
        tasks = [ExecTask(lambda i=i: log.append(i)) for i in range(5)]
        total = run_serial(tasks)
        assert sorted(log) == list(range(5))
        assert total >= 0
        assert all(t.measured >= 0 for t in tasks)

    def test_respects_dependencies(self):
        log = []
        tasks = [
            ExecTask(lambda: log.append("a")),
            ExecTask(lambda: log.append("b")),
        ]
        graph = make_graph(2, [(1, 0)])  # task 1 before task 0
        run_serial(tasks, graph)
        assert log.index("b") < log.index("a")


class TestRunThreaded:
    def test_executes_everything(self):
        done = set()
        lock = threading.Lock()

        def work(i):
            with lock:
                done.add(i)

        tasks = [ExecTask(lambda i=i: work(i)) for i in range(20)]
        graph = make_graph(20, [])
        run_threaded(tasks, graph, P=4)
        assert done == set(range(20))

    def test_dependency_order(self):
        order = []
        lock = threading.Lock()

        def work(i):
            with lock:
                order.append(i)

        # Chain 0 -> 1 -> 2 with two stragglers.
        tasks = [ExecTask(lambda i=i: work(i)) for i in range(5)]
        graph = make_graph(5, [(0, 1), (1, 2)])
        run_threaded(tasks, graph, P=3)
        assert order.index(0) < order.index(1) < order.index(2)

    def test_parallel_overlap_happens(self):
        """Two GIL-releasing sleeps on 2 workers take ~1x, not ~2x."""
        tasks = [ExecTask(lambda: time.sleep(0.1)) for _ in range(2)]
        graph = make_graph(2, [])
        t0 = time.perf_counter()
        run_threaded(tasks, graph, P=2)
        assert time.perf_counter() - t0 < 0.19

    def test_worker_failure_propagates(self):
        def boom():
            raise RuntimeError("kaboom")

        tasks = [ExecTask(lambda: None), ExecTask(boom), ExecTask(lambda: None)]
        graph = make_graph(3, [])
        with pytest.raises(RuntimeError, match="kaboom"):
            run_threaded(tasks, graph, P=2)

    def test_rejects_bad_P(self):
        with pytest.raises(ValueError):
            run_threaded([], make_graph(0, []), P=0)

    def test_rejects_size_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            run_threaded([ExecTask(lambda: None)], make_graph(2, []), P=1)

    def test_priority_order_on_single_worker(self):
        order = []
        tasks = [ExecTask(lambda i=i: order.append(i), weight_hint=w)
                 for i, w in enumerate([1.0, 9.0, 4.0])]
        graph = make_graph(3, [])
        run_threaded(tasks, graph, P=1,
                     priority=lambda v: (-tasks[v].weight_hint, v))
        assert order == [1, 2, 0]


class TestSimulateFromMeasured:
    def test_replays_measured_weights(self):
        tasks = [ExecTask(lambda: time.sleep(0.01)) for _ in range(4)]
        graph = make_graph(4, [])
        run_serial(tasks, graph)
        res = simulate_from_measured(tasks, graph, P=4)
        serial_total = sum(t.measured for t in tasks)
        assert res.makespan <= serial_total
        assert res.makespan >= max(t.measured for t in tasks) - 1e-9

    def test_chain_cannot_beat_critical_path(self):
        tasks = [ExecTask(lambda: time.sleep(0.005)) for _ in range(3)]
        graph = make_graph(3, [(0, 1), (1, 2)])
        run_serial(tasks, graph)
        res = simulate_from_measured(tasks, graph, P=8)
        assert res.makespan == pytest.approx(sum(t.measured for t in tasks), rel=1e-6)


class TestRunThreadedStamping:
    """The batched engine's sharded threads path (private volumes + merge)."""

    def _setup(self, n=120):
        import numpy as np

        from repro.core import DomainSpec, GridSpec, WorkCounter
        from repro.core.kernels import get_kernel

        grid = GridSpec(DomainSpec.from_voxels(18, 16, 20), hs=2.5, ht=2.1)
        rng = np.random.default_rng(7)
        coords = rng.uniform([0, 0, 0], [18, 16, 20], size=(n, 3))
        return np, grid, get_kernel("epanechnikov"), coords, WorkCounter

    def test_matches_serial_engine(self):
        import numpy as np

        from repro.core.stamping import stamp_batch
        from repro.parallel.executors import run_threaded_stamping

        np_, grid, kern, coords, WC = self._setup()
        serial = np.zeros(grid.shape)
        stamp_batch(serial, grid, kern, coords, 1.0, WC())
        for P in (1, 2, 4):
            vol = np.zeros(grid.shape)
            wall = run_threaded_stamping(vol, grid, kern, coords, 1.0, WC(), P)
            np.testing.assert_allclose(vol, serial, rtol=1e-12, atol=1e-18)
            assert wall >= 0

    def test_accounts_bbox_buffers_and_reduction(self):
        import numpy as np

        from repro.core.regions import plan_stamp_shards
        from repro.parallel.executors import run_threaded_stamping

        np_, grid, kern, coords, WC = self._setup()
        c = WC()
        vol = np.zeros(grid.shape)
        P = 3
        run_threaded_stamping(vol, grid, kern, coords, 1.0, c, P)
        plan = plan_stamp_shards(grid, coords, P)
        # Buffer zeroing is charged per bbox cell (and mirrored in the
        # shard_bbox_cells gauge); the slab reduction touches every buffer
        # cell exactly once.
        assert c.shard_bbox_cells == plan.buffer_cells
        assert c.init_writes == plan.buffer_cells
        assert c.reduce_adds == plan.buffer_cells
        assert c.stamp_batches == plan.n_shards == P
        # The whole point of bbox shards: strictly below P full volumes.
        assert c.shard_bbox_cells < P * grid.n_voxels

    def test_memory_budget_from_planned_buffers(self):
        import numpy as np
        import pytest as _pytest

        from repro.core.regions import plan_stamp_shards
        from repro.parallel.executors import (
            MemoryBudgetExceeded,
            run_threaded_stamping,
        )

        np_, grid, kern, coords, WC = self._setup()
        vol = np.zeros(grid.shape)
        plan = plan_stamp_shards(grid, coords, 3)
        need = vol.nbytes + plan.buffer_bytes
        with _pytest.raises(MemoryBudgetExceeded):
            run_threaded_stamping(
                vol, grid, kern, coords, 1.0, WC(), 3,
                memory_budget_bytes=need - 1,
            )
        assert not vol.any()  # refused before stamping anything
        run_threaded_stamping(
            vol, grid, kern, coords, 1.0, WC(), 3, memory_budget_bytes=need
        )
        assert vol.any()

    def test_auto_shard_count(self):
        import os

        import numpy as np

        from repro.core.stamping import stamp_batch
        from repro.parallel.executors import (
            resolve_shard_count,
            run_threaded_stamping,
        )

        assert resolve_shard_count(3) == 3
        auto = resolve_shard_count("auto")
        assert auto >= 1
        if hasattr(os, "sched_getaffinity"):
            assert auto == len(os.sched_getaffinity(0))
        with np.testing.assert_raises(ValueError):
            resolve_shard_count(0)
        with np.testing.assert_raises(ValueError):
            resolve_shard_count("four")

        np_, grid, kern, coords, WC = self._setup()
        serial = np.zeros(grid.shape)
        stamp_batch(serial, grid, kern, coords, 1.0, WC())
        vol = np.zeros(grid.shape)
        run_threaded_stamping(vol, grid, kern, coords, 1.0, WC(), "auto")
        np.testing.assert_allclose(vol, serial, rtol=1e-12, atol=1e-18)

    def test_clip_respected(self):
        import numpy as np

        from repro.core import VoxelWindow
        from repro.core.stamping import stamp_batch
        from repro.parallel.executors import run_threaded_stamping

        np_, grid, kern, coords, WC = self._setup()
        clip = VoxelWindow(3, 12, 2, 11, 4, 16)
        serial = np.zeros(grid.shape)
        stamp_batch(serial, grid, kern, coords, 1.0, WC(), clip=clip)
        vol = np.zeros(grid.shape)
        run_threaded_stamping(vol, grid, kern, coords, 1.0, WC(), 2, clip=clip)
        np.testing.assert_allclose(vol, serial, rtol=1e-12, atol=1e-18)
        mask = np.ones(grid.shape, dtype=bool)
        mask[clip.slices()] = False
        assert not vol[mask].any()

    def test_empty_batch(self):
        import numpy as np

        from repro.parallel.executors import run_threaded_stamping

        np_, grid, kern, _, WC = self._setup()
        vol = np.zeros(grid.shape)
        wall = run_threaded_stamping(vol, grid, kern, np.empty((0, 3)), 1.0, WC(), 4)
        assert wall == 0.0 and not vol.any()

    def test_pb_sym_threads_backend_matches_serial(self):
        import numpy as np

        from repro.algorithms import pb_sym
        from repro.core import DomainSpec, GridSpec, PointSet

        grid = GridSpec(DomainSpec.from_voxels(18, 16, 20), hs=2.5, ht=2.1)
        rng = np.random.default_rng(11)
        pts = PointSet(rng.uniform([0, 0, 0], [18, 16, 20], size=(90, 3)))
        serial = pb_sym(pts, grid)
        threaded = pb_sym(pts, grid, P=4, backend="threads")
        np.testing.assert_allclose(threaded.data, serial.data, rtol=1e-12, atol=1e-18)
        assert threaded.meta["P"] == 4
        assert threaded.meta["backend"] == "threads"
        assert threaded.counter.points_processed == pts.n

    def test_pb_sym_rejects_unknown_backend(self):
        import numpy as np
        import pytest as _pytest

        from repro.algorithms import pb_sym
        from repro.core import DomainSpec, GridSpec, PointSet

        grid = GridSpec(DomainSpec.from_voxels(10, 10, 10), hs=2.0, ht=2.0)
        pts = PointSet(np.random.default_rng(0).uniform(0, 10, size=(5, 3)))
        with _pytest.raises(ValueError, match="backend"):
            pb_sym(pts, grid, P=4, backend="simulated")
        with _pytest.raises(ValueError, match="backend"):
            pb_sym(pts, grid, backend="thread")  # typo must not run serial

    def test_pb_sym_threads_respects_memory_budget(self):
        import numpy as np
        import pytest as _pytest

        from repro.algorithms import pb_sym
        from repro.core import DomainSpec, GridSpec, PointSet
        from repro.parallel.executors import MemoryBudgetExceeded

        grid = GridSpec(DomainSpec.from_voxels(12, 12, 12), hs=2.0, ht=2.0)
        pts = PointSet(np.random.default_rng(1).uniform(0, 12, size=(20, 3)))
        # The budget is checked against the *planned* footprint: the output
        # volume plus the bbox shard buffers (not P+1 full volumes).
        from repro.core.regions import plan_stamp_shards

        need = grid.grid_bytes + plan_stamp_shards(grid, pts.coords, 4).buffer_bytes
        assert need < 5 * grid.grid_bytes  # bbox shards undercut P+1 volumes
        with _pytest.raises(MemoryBudgetExceeded):
            pb_sym(pts, grid, P=4, backend="threads",
                   memory_budget_bytes=need - 1)
        # A budget covering the planned buffers runs fine and matches serial.
        serial = pb_sym(pts, grid)
        res = pb_sym(pts, grid, P=4, backend="threads",
                     memory_budget_bytes=need)
        np.testing.assert_allclose(res.data, serial.data, rtol=1e-12, atol=1e-18)


class TestPerShardMerge:
    """Disjoint shard boxes merge per shard, not per slab (PR-2 follow-on)."""

    def _two_cluster_setup(self):
        import numpy as np

        from repro.core import DomainSpec, GridSpec, WorkCounter
        from repro.core.kernels import get_kernel

        grid = GridSpec(DomainSpec.from_voxels(96, 64, 48), hs=3.0, ht=2.0)
        rng = np.random.default_rng(21)
        coords = np.vstack([
            rng.normal([20, 20, 20], 1.5, size=(300, 3)),
            rng.normal([76, 44, 38], 1.5, size=(300, 3)),
        ])
        return np, grid, get_kernel("epanechnikov"), coords, WorkCounter

    def test_cluster_shards_are_disjoint(self):
        from repro.core.regions import plan_stamp_shards
        from repro.parallel.executors import _windows_pairwise_disjoint

        np, grid, kern, coords, WC = self._two_cluster_setup()
        plan = plan_stamp_shards(grid, coords, 2)
        assert plan.n_shards == 2
        assert _windows_pairwise_disjoint(plan.windows)

    def test_disjoint_merge_matches_serial(self):
        from repro.core.stamping import stamp_batch
        from repro.parallel.executors import run_threaded_stamping

        np, grid, kern, coords, WC = self._two_cluster_setup()
        serial = np.zeros(grid.shape)
        stamp_batch(serial, grid, kern, coords, 1.0, WC())
        for P in (2, 4):
            vol = np.zeros(grid.shape)
            run_threaded_stamping(vol, grid, kern, coords, 1.0, WC(), P)
            np.testing.assert_allclose(vol, serial, rtol=1e-12, atol=1e-18)

    def test_disjoint_merge_accounting_unchanged(self):
        """Each buffer cell reduces exactly once on either merge path."""
        from repro.core.regions import plan_stamp_shards
        from repro.parallel.executors import run_threaded_stamping

        np, grid, kern, coords, WC = self._two_cluster_setup()
        c = WC()
        run_threaded_stamping(np.zeros(grid.shape), grid, kern, coords, 1.0, c, 2)
        plan = plan_stamp_shards(grid, coords, 2)
        assert c.reduce_adds == plan.buffer_cells
        assert c.init_writes == plan.buffer_cells

    def test_overlapping_shards_still_slab_merge(self):
        """Uniform data has no gaps: the slab path remains and is exact."""
        import numpy as np

        from repro.core import DomainSpec, GridSpec, WorkCounter
        from repro.core.kernels import get_kernel
        from repro.core.regions import plan_stamp_shards
        from repro.core.stamping import stamp_batch
        from repro.parallel.executors import (
            _windows_pairwise_disjoint,
            run_threaded_stamping,
        )

        grid = GridSpec(DomainSpec.from_voxels(32, 24, 20), hs=2.5, ht=2.0)
        coords = np.random.default_rng(22).uniform(
            0, [32, 24, 20], size=(400, 3)
        )
        plan = plan_stamp_shards(grid, coords, 4)
        assert not _windows_pairwise_disjoint(plan.windows)
        serial = np.zeros(grid.shape)
        stamp_batch(serial, grid, kern := get_kernel("epanechnikov"),
                    coords, 1.0, WorkCounter())
        vol = np.zeros(grid.shape)
        c = WorkCounter()
        run_threaded_stamping(vol, grid, kern, coords, 1.0, c, 4)
        np.testing.assert_allclose(vol, serial, rtol=1e-12, atol=1e-18)
        assert c.reduce_adds == plan.buffer_cells
