"""Tests for the execution backends (serial / threaded / simulated)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.parallel.executors import (
    ExecTask,
    MemoryBudgetExceeded,
    check_memory_budget,
    run_serial,
    run_threaded,
    simulate_from_measured,
)
from repro.parallel.schedule import TaskGraph


def make_graph(n, edges):
    succs = [[] for _ in range(n)]
    preds = [[] for _ in range(n)]
    for u, v in edges:
        succs[u].append(v)
        preds[v].append(u)
    return TaskGraph([1.0] * n, succs, preds)


class TestMemoryBudget:
    def test_within_budget_passes(self):
        check_memory_budget(100, 200, "x")

    def test_none_budget_always_passes(self):
        check_memory_budget(10**18, None, "x")

    def test_exceeded_raises_with_sizes(self):
        with pytest.raises(MemoryBudgetExceeded) as ei:
            check_memory_budget(2_000_000, 1_000_000, "DR test")
        assert "DR test" in str(ei.value)
        assert ei.value.needed == 2_000_000
        assert ei.value.budget == 1_000_000


class TestRunSerial:
    def test_executes_all_and_measures(self):
        log = []
        tasks = [ExecTask(lambda i=i: log.append(i)) for i in range(5)]
        total = run_serial(tasks)
        assert sorted(log) == list(range(5))
        assert total >= 0
        assert all(t.measured >= 0 for t in tasks)

    def test_respects_dependencies(self):
        log = []
        tasks = [
            ExecTask(lambda: log.append("a")),
            ExecTask(lambda: log.append("b")),
        ]
        graph = make_graph(2, [(1, 0)])  # task 1 before task 0
        run_serial(tasks, graph)
        assert log.index("b") < log.index("a")


class TestRunThreaded:
    def test_executes_everything(self):
        done = set()
        lock = threading.Lock()

        def work(i):
            with lock:
                done.add(i)

        tasks = [ExecTask(lambda i=i: work(i)) for i in range(20)]
        graph = make_graph(20, [])
        run_threaded(tasks, graph, P=4)
        assert done == set(range(20))

    def test_dependency_order(self):
        order = []
        lock = threading.Lock()

        def work(i):
            with lock:
                order.append(i)

        # Chain 0 -> 1 -> 2 with two stragglers.
        tasks = [ExecTask(lambda i=i: work(i)) for i in range(5)]
        graph = make_graph(5, [(0, 1), (1, 2)])
        run_threaded(tasks, graph, P=3)
        assert order.index(0) < order.index(1) < order.index(2)

    def test_parallel_overlap_happens(self):
        """Two GIL-releasing sleeps on 2 workers take ~1x, not ~2x."""
        tasks = [ExecTask(lambda: time.sleep(0.1)) for _ in range(2)]
        graph = make_graph(2, [])
        t0 = time.perf_counter()
        run_threaded(tasks, graph, P=2)
        assert time.perf_counter() - t0 < 0.19

    def test_worker_failure_propagates(self):
        def boom():
            raise RuntimeError("kaboom")

        tasks = [ExecTask(lambda: None), ExecTask(boom), ExecTask(lambda: None)]
        graph = make_graph(3, [])
        with pytest.raises(RuntimeError, match="kaboom"):
            run_threaded(tasks, graph, P=2)

    def test_rejects_bad_P(self):
        with pytest.raises(ValueError):
            run_threaded([], make_graph(0, []), P=0)

    def test_rejects_size_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            run_threaded([ExecTask(lambda: None)], make_graph(2, []), P=1)

    def test_priority_order_on_single_worker(self):
        order = []
        tasks = [ExecTask(lambda i=i: order.append(i), weight_hint=w)
                 for i, w in enumerate([1.0, 9.0, 4.0])]
        graph = make_graph(3, [])
        run_threaded(tasks, graph, P=1,
                     priority=lambda v: (-tasks[v].weight_hint, v))
        assert order == [1, 2, 0]


class TestSimulateFromMeasured:
    def test_replays_measured_weights(self):
        tasks = [ExecTask(lambda: time.sleep(0.01)) for _ in range(4)]
        graph = make_graph(4, [])
        run_serial(tasks, graph)
        res = simulate_from_measured(tasks, graph, P=4)
        serial_total = sum(t.measured for t in tasks)
        assert res.makespan <= serial_total
        assert res.makespan >= max(t.measured for t in tasks) - 1e-9

    def test_chain_cannot_beat_critical_path(self):
        tasks = [ExecTask(lambda: time.sleep(0.005)) for _ in range(3)]
        graph = make_graph(3, [(0, 1), (1, 2)])
        run_serial(tasks, graph)
        res = simulate_from_measured(tasks, graph, P=8)
        assert res.makespan == pytest.approx(sum(t.measured for t in tasks), rel=1e-6)
