"""Consistency tests for the transcribed paper data the harness mirrors."""

from __future__ import annotations

import pytest

from benchmarks.paper_expectations import (
    FIGURE_CLAIMS,
    TABLE3,
    TABLE3_COLUMNS,
    table3_has,
)
from repro.data.datasets import instance_names


class TestTable3Transcription:
    def test_covers_all_21_instances_in_order(self):
        assert tuple(TABLE3) == instance_names()

    def test_row_arity(self):
        for name, row in TABLE3.items():
            assert len(row) == 7, name  # 6 algorithms + speedup

    def test_blank_pattern_is_prefix(self):
        """The paper never reports a slower algorithm while omitting a
        faster one: blanks form a prefix of each row (VB first to go)."""
        for name, row in TABLE3.items():
            algos = row[:6]
            seen_value = False
            for cell in algos:
                if cell is not None:
                    seen_value = True
                elif seen_value and name != "eBird_Hr-Hb":
                    pytest.fail(f"non-prefix blank in {name}")

    def test_speedup_column_consistent(self):
        """Where PB and PB-SYM are both reported, the printed speedup is
        their ratio (transcription check, 1% slack for the paper's own
        rounding)."""
        for name, row in TABLE3.items():
            vb, vbdec, pb, disk, bar, sym, sp = row
            if pb is not None and sym is not None and sp is not None:
                assert sp == pytest.approx(pb / sym, rel=0.01), name

    def test_ordering_in_paper_numbers(self):
        """The paper's own data obeys the Section 3 ordering claims."""
        for name, row in TABLE3.items():
            vb, vbdec, pb, disk, bar, sym, _ = row
            if vb is not None and vbdec is not None:
                assert vb > vbdec, name
            if pb is not None and sym is not None:
                assert pb >= sym, name
            if disk is not None and bar is not None:
                assert disk <= bar, name  # PB-DISK beats PB-BAR throughout

    def test_table3_has_matches_rows(self):
        assert table3_has("Dengue_Lr-Lb", "vb")
        assert not table3_has("PollenUS_Hr-Hb", "vb")
        assert not table3_has("eBird_Hr-Hb", "pb")
        assert table3_has("eBird_Hr-Hb", "pb-sym")

    def test_columns_order(self):
        assert TABLE3_COLUMNS == ("vb", "vb-dec", "pb", "pb-disk", "pb-bar", "pb-sym")


class TestFigureClaims:
    def test_every_figure_documented(self):
        assert {f"fig{i}" for i in range(7, 16)} <= set(FIGURE_CLAIMS)

    def test_claims_are_substantive(self):
        for fig, claim in FIGURE_CLAIMS.items():
            assert len(claim) > 40, fig
