"""Shared test-data builders, importable from every test package.

These used to live in ``tests/conftest.py`` and were pulled in with
relative imports (``from ..conftest import make_points``), which only
works when the test modules are imported as a package — under the plain
rootdir invocation (``python -m pytest``) collection died with
``ImportError: attempted relative import with no known parent package``.
Keeping the builders in a regular module (with ``__init__.py`` files
making ``tests`` a real package) lets every test import them absolutely::

    from tests.helpers import make_clustered_points, make_points

``conftest.py`` re-exports both names for backwards compatibility.
"""

from __future__ import annotations

import numpy as np

from repro.core import GridSpec, PointSet

__all__ = ["make_points", "make_clustered_points"]


def make_points(grid: GridSpec, n: int, seed: int = 0) -> PointSet:
    """Uniform random points spanning the whole domain box."""
    rng = np.random.default_rng(seed)
    d = grid.domain
    lo = [d.x0, d.y0, d.t0]
    hi = [d.x0 + d.gx, d.y0 + d.gy, d.t0 + d.gt]
    return PointSet(rng.uniform(lo, hi, size=(n, 3)))


def make_clustered_points(grid: GridSpec, n: int, k: int = 3, seed: int = 0) -> PointSet:
    """Clustered points (mixture of Gaussians), mimicking real datasets."""
    rng = np.random.default_rng(seed)
    d = grid.domain
    lo = np.array([d.x0, d.y0, d.t0])
    span = np.array([d.gx, d.gy, d.gt])
    centers = rng.uniform(lo + 0.2 * span, lo + 0.8 * span, size=(k, 3))
    which = rng.integers(0, k, size=n)
    pts = centers[which] + rng.normal(0, 0.08, size=(n, 3)) * span
    pts = np.clip(pts, lo, lo + span * (1 - 1e-9))
    return PointSet(pts)
