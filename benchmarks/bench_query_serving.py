"""Benchmark: the query-serving subsystem.

Measures the serving layer's core trades on a clustered instance:

1. **Direct-sum vs volume-lookup crossover**: answering ``m`` point
   queries by index-walk kernel sums (O(candidates) per query, no volume)
   vs materialising the volume once and trilinearly sampling (O(1) per
   query after the build).  Small batches favour direct, large batches
   amortise the build — the planner must land on the right side at both
   ends of the sweep.
2. **Cohort speedup**: the cohort-vectorised direct-sum engine vs the
   retained per-group walk on a scattered batch — the read-side analogue
   of the stamping engine's cohort batching (PR-4 acceptance: >= 2x on
   the 50k scattered batch at clustered n=1e5).
3. **Slide-then-query**: a live sliding window served across
   ``slide_window`` — the incremental index re-buckets only the arriving
   batch (O(batch), measured by ``index_events_bucketed``) while a cold
   service re-buckets all n live events.
4. **Steady-state slides**: 100 tiny-batch slides through one service —
   the merge policy must hold the live segment count under the cap, the
   compaction debt must stay under budget, per-sync work must stay
   O(arriving batch) (bucketing counters + warm-sync wall time vs the
   cold rebuild), and the 50k scattered cohort query on the merged index
   must not regress against a fresh single-segment index.
5. **Cache-hit speedup**: a repeated dashboard slice served from the
   version-keyed LRU vs recomputed.
6. **Approximate tier (throughput vs eps)**: the bucket-importance
   sampler vs the exact direct sum on a dense high-candidate batch at
   several error budgets — measuring realised p95 relative error
   against the exact answers (must sit within each requested eps), the
   speedup, and whether the calibrated planner routes the batch to the
   approx backend on its own.

Every cell re-verifies that direct sums match the stamped volume at
queried voxel centers (``rtol=1e-6`` acceptance, measured slack ~1e-12),
and the cohort engine is re-verified against the group walk.

Writes ``BENCH_query.json`` at the repository root (override with
``--out``); ``--results-dir DIR`` additionally writes
``DIR/query_serving.json`` in the shape :mod:`repro.analysis.report`
checks.  ``--smoke`` runs a seconds-scale subset with the same schema.

Run:  ``PYTHONPATH=src python benchmarks/bench_query_serving.py``
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import numpy as np

from repro.analysis.model import CostModel, MachineModel
from repro.core import DomainSpec, GridSpec, PointSet, WorkCounter
from repro.core.backends import available_backends, get_backend
from repro.core.incremental import IncrementalSTKDE
from repro.core.stamping import stamp_batch
from repro.core.kernels import get_kernel
from repro.serve import (
    BucketIndex,
    DensityService,
    QueryPlanner,
    ShardedDensityService,
    approx_sum,
    calibrate_serving,
    direct_sum,
    direct_sum_grouped,
    sample_volume,
)

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_query.json"

#: Same paper-flavoured geometry as the other benchmark suites.
GRID_VOXELS = (128, 128, 64)
HS, HT = 3.0, 2.0


def make_grid() -> GridSpec:
    return GridSpec(DomainSpec.from_voxels(*GRID_VOXELS), hs=HS, ht=HT)


def make_coords(grid: GridSpec, n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    span = np.array([grid.domain.gx, grid.domain.gy, grid.domain.gt])
    centers = rng.uniform(0.2 * span, 0.8 * span, size=(5, 3))
    pts = centers[rng.integers(0, 5, size=n)] + rng.normal(0, 0.08, size=(n, 3)) * span
    return np.clip(pts, 0, span * (1 - 1e-9))


def voxel_center_queries(grid, m, seed):
    """Random voxel-center locations and their voxel indices:
    ``(queries (m, 3), vox (m, 3))`` — centers are where direct and
    lookup are both exact."""
    rng = np.random.default_rng(seed)
    vox = np.column_stack([
        rng.integers(0, grid.Gx, m),
        rng.integers(0, grid.Gy, m),
        rng.integers(0, grid.Gt, m),
    ])
    return np.column_stack([
        grid.x_centers()[vox[:, 0]],
        grid.y_centers()[vox[:, 1]],
        grid.t_centers()[vox[:, 2]],
    ]), vox


def best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def crossover_rows(grid: GridSpec, n: int, query_counts, repeats: int,
                   machine: MachineModel) -> list:
    """Direct-sum vs build+lookup at each batch size, plus planner verdicts."""
    kern = get_kernel("epanechnikov")
    coords = make_coords(grid, n)
    norm = grid.normalization(n)
    index = BucketIndex(grid, coords)
    planner = QueryPlanner(CostModel(grid, PointSet(coords), machine))

    # Reference volume (also the timed build) for equivalence + lookup.
    vol = grid.allocate()
    t0 = time.perf_counter()
    stamp_batch(vol, grid, kern, coords, norm, WorkCounter())
    t_build = time.perf_counter() - t0

    rows = []
    for m in query_counts:
        q, vox = voxel_center_queries(grid, m, seed=m)
        t_direct = best_of(lambda: direct_sum(index, q, kern, norm), repeats)
        t_sample = best_of(lambda: sample_volume(vol, grid, q), repeats)
        dens = direct_sum(index, q, kern, norm)
        ref = vol[vox[:, 0], vox[:, 1], vox[:, 2]]
        equiv = bool(np.allclose(dens, ref, rtol=1e-6, atol=1e-18))
        plan = planner.plan_points(index, q, volume_ready=False)
        t_lookup_cold = t_build + t_sample
        measured_winner = "direct" if t_direct <= t_lookup_cold else "lookup"
        rows.append({
            "path": "crossover",
            "n_events": n,
            "n_queries": m,
            "mean_candidates": float(index.candidate_counts(q).mean()),
            "direct_seconds": t_direct,
            "volume_build_seconds": t_build,
            "lookup_sample_seconds": t_sample,
            "lookup_cold_seconds": t_lookup_cold,
            "measured_winner": measured_winner,
            "planner_choice": plan.backend,
            "planner_agrees": plan.backend == measured_winner,
            "direct_matches_stamp_rtol_1e6": equiv,
        })
        print(
            f"crossover n={n} m={m:>6d}  direct {t_direct:8.4f}s  "
            f"lookup(cold) {t_lookup_cold:8.4f}s (build {t_build:.3f} + "
            f"sample {t_sample:.4f})  winner={measured_winner:6s} "
            f"planner={plan.backend:6s} equiv={equiv}"
        )
    return rows


def cohort_row(grid: GridSpec, n: int, m: int, repeats: int) -> dict:
    """Cohort-vectorised engine vs the per-group walk, scattered batch."""
    kern = get_kernel("epanechnikov")
    coords = make_coords(grid, n)
    norm = grid.normalization(n)
    index = BucketIndex(grid, coords)
    rng = np.random.default_rng(7)
    span = np.array([grid.domain.gx, grid.domain.gy, grid.domain.gt])
    q = rng.uniform(0, span, size=(m, 3))

    t_grouped = best_of(lambda: direct_sum_grouped(index, q, kern, norm),
                        repeats)
    counter = WorkCounter()
    t_cohort = best_of(lambda: direct_sum(index, q, kern, norm, counter),
                       repeats)
    a = direct_sum(index, q, kern, norm)
    b = direct_sum_grouped(index, q, kern, norm)
    equiv = bool(np.allclose(a, b, rtol=1e-12, atol=0.0))
    row = {
        "path": "cohort-speedup",
        "n_events": n,
        "n_queries": m,
        "groups": index.group_count(q),
        "cohorts": index.cohort_count(q),
        "grouped_seconds": t_grouped,
        "cohort_seconds": t_cohort,
        "cohort_speedup": t_grouped / max(t_cohort, 1e-12),
        "cohort_matches_grouped_rtol_1e12": equiv,
    }
    print(
        f"cohort       n={n} m={m:>6d}  grouped {t_grouped:8.4f}s "
        f"({row['groups']} groups)  cohort {t_cohort:8.4f}s "
        f"({row['cohorts']} cohorts)  {row['cohort_speedup']:.2f}x "
        f"equiv={equiv}"
    )
    return row


def slide_row(grid: GridSpec, n: int, n_batches: int, m: int,
              machine: MachineModel) -> dict:
    """Slide-then-query under a live window: O(batch) index sync.

    A service holding a warm incremental index absorbs a ``slide_window``
    by retiring the expired batch's segment and bucketing only the
    arriving one; a cold service re-buckets all live events.  Measures
    both latencies and the re-bucketed event counts.
    """
    batch = n // n_batches
    kern_name = "epanechnikov"
    inc = IncrementalSTKDE(grid)
    rng = np.random.default_rng(11)
    span = np.array([grid.domain.gx, grid.domain.gy, grid.domain.gt])
    t_slab = grid.domain.gt / (n_batches + 1)

    def feed(i: int) -> np.ndarray:
        pts = make_coords(grid, batch, seed=40 + i)
        pts[:, 2] = rng.uniform(i * t_slab, (i + 1) * t_slab, size=batch)
        return pts

    for i in range(n_batches):
        inc.add(feed(i))
    svc = DensityService(inc, kernel=kern_name, machine=machine)
    q = rng.uniform(0, span, size=(m, 3))
    svc.query_points(q, backend="direct")  # warm the index
    bucketed_before = svc.counter.index_events_bucketed

    t0 = time.perf_counter()
    retired = inc.slide_window(feed(n_batches), t_horizon=t_slab)
    t_slide = time.perf_counter() - t0
    t0 = time.perf_counter()
    warm = svc.query_points(q, backend="direct")
    t_warm_query = time.perf_counter() - t0
    rebucketed = svc.counter.index_events_bucketed - bucketed_before

    # Cold reference: a fresh service must re-bucket every live event.
    cold_svc = DensityService(inc, kernel=kern_name, machine=machine)
    t0 = time.perf_counter()
    cold = cold_svc.query_points(q, backend="direct")
    t_cold_query = time.perf_counter() - t0
    equiv = bool(np.allclose(warm, cold, rtol=1e-9, atol=1e-18))

    row = {
        "path": "slide-sync",
        "n_live_events": inc.n,
        "batch_size": batch,
        "n_batches": n_batches,
        "n_queries": m,
        "retired": retired,
        "slide_seconds": t_slide,
        "warm_query_seconds": t_warm_query,
        "cold_query_seconds": t_cold_query,
        "events_rebucketed_after_slide": rebucketed,
        "events_rebucketed_cold": cold_svc.counter.index_events_bucketed,
        "sync_obatch": rebucketed <= 1.5 * batch,
        "warm_matches_cold_rtol_1e9": equiv,
        "index_segments": svc.index().segment_count,
    }
    print(
        f"slide-sync   live={inc.n} batch={batch}  warm sync re-bucketed "
        f"{rebucketed} events (cold: {row['events_rebucketed_cold']})  "
        f"slide {t_slide:0.4f}s  query warm {t_warm_query:0.4f}s vs cold "
        f"{t_cold_query:0.4f}s  equiv={equiv}"
    )
    return row


def steady_slides_row(grid: GridSpec, n_slides: int, batch: int,
                      window_batches: int, m_big: int,
                      machine: MachineModel) -> dict:
    """Steady-state serving under sustained tiny-batch slides.

    One service absorbs ``n_slides`` slides of ``batch`` events each
    (window of ``window_batches`` batches).  Measures: live segment count
    (merge policy cap), compaction debt vs budget, per-sync wall time and
    bucketing work (O(arriving batch) — a cold service re-buckets the
    whole window instead), and finally a large scattered cohort query on
    the merge-capped index vs an *uncapped* index fed identically — the
    probe-cost-bounded claim of the merge policy (a fresh monolithic
    index is also timed for reference).
    """
    kern_name = "epanechnikov"
    rng = np.random.default_rng(23)
    span = np.array([grid.domain.gx, grid.domain.gy, grid.domain.gt])
    t_slab = grid.domain.gt / (n_slides + window_batches)
    cap = 8

    def feed(i: int) -> np.ndarray:
        pts = make_coords(grid, batch, seed=900 + i)
        pts[:, 2] = rng.uniform(i * t_slab, (i + 1) * t_slab, size=batch)
        return pts

    inc = IncrementalSTKDE(grid)
    svc = DensityService(inc, kernel=kern_name, machine=machine,
                         index_merge_cap=cap)
    svc_uncapped = DensityService(inc, kernel=kern_name, machine=machine,
                                  index_merge_cap=None)
    probe = rng.uniform(0, span, size=(64, 3))
    sync_times = []
    max_segments = max_dead = max_uncapped = 0
    budget_ok = True
    bucketed0 = svc.counter.index_events_bucketed
    for i in range(n_slides):
        horizon = max(0.0, (i - window_batches) * t_slab)
        inc.slide_window(feed(i), t_horizon=horizon)
        t0 = time.perf_counter()
        svc.query_points(probe, backend="direct")  # drives the sync
        sync_times.append(time.perf_counter() - t0)
        svc_uncapped.query_points(probe, backend="direct")
        idx = svc.index()
        max_segments = max(max_segments, idx.segment_count)
        max_uncapped = max(max_uncapped, svc_uncapped.index().segment_count)
        max_dead = max(max_dead, idx.dead_rows)
        budget_ok = budget_ok and idx.dead_rows <= idx.dead_row_budget
    bucketed = svc.counter.index_events_bucketed - bucketed0

    # Cold reference: one fresh service syncs the whole live window.
    cold_svc = DensityService(inc, kernel=kern_name, machine=machine)
    t0 = time.perf_counter()
    cold_probe = cold_svc.query_points(probe, backend="direct")
    t_cold = time.perf_counter() - t0
    warm_probe = svc.query_points(probe, backend="direct")
    equiv = bool(np.allclose(warm_probe, cold_probe, rtol=1e-9, atol=1e-18))

    # Probe-cost bound: the capped index vs the uncapped segment pileup
    # on one large scattered cohort batch (fresh monolith for reference).
    q_big = rng.uniform(0, span, size=(m_big, 3))
    kern = get_kernel(kern_name)
    norm = grid.normalization(inc.n)
    idx_merged = svc.index()
    idx_uncapped = svc_uncapped.index()
    mono = BucketIndex(grid, inc.live_coords)
    t_merged = best_of(lambda: direct_sum(idx_merged, q_big, kern, norm), 2)
    t_uncapped = best_of(
        lambda: direct_sum(idx_uncapped, q_big, kern, norm), 2
    )
    t_mono = best_of(lambda: direct_sum(mono, q_big, kern, norm), 2)
    np.testing.assert_allclose(
        direct_sum(idx_merged, q_big, kern, norm),
        direct_sum(mono, q_big, kern, norm),
        rtol=1e-9, atol=1e-18,
    )

    model = CostModel(grid, PointSet(inc.live_coords), machine)
    merge_econ = model.predict_merge(
        inc.n, n_segments=window_batches, n_groups=idx_merged.group_count(q_big)
    )
    stats = idx_merged.stats()
    row = {
        "path": "steady-slides",
        "n_slides": n_slides,
        "batch_size": batch,
        "window_batches": window_batches,
        "n_live_events": inc.n,
        "merge_cap": cap,
        "max_live_segments": max_segments,
        "max_uncapped_segments": max_uncapped,
        "segments_bounded_by_cap": max_segments <= cap,
        "max_dead_rows": max_dead,
        "dead_rows_within_budget": budget_ok,
        "events_bucketed_total": bucketed,
        "bucketed_per_slide_obatch": bucketed <= 2 * batch * n_slides,
        "mean_warm_sync_seconds": sum(sync_times) / len(sync_times),
        "max_warm_sync_seconds": max(sync_times),
        "cold_rebuild_seconds": t_cold,
        "segments_merged": stats["segments_merged"],
        "rows_compacted": stats["rows_compacted"],
        "warm_matches_cold_rtol_1e9": equiv,
        "m_big_queries": m_big,
        "merged_cohort_seconds": t_merged,
        "uncapped_cohort_seconds": t_uncapped,
        "fresh_mono_cohort_seconds": t_mono,
        "merged_vs_uncapped_latency_ratio": t_merged / max(t_uncapped, 1e-12),
        "merged_vs_mono_latency_ratio": t_merged / max(t_mono, 1e-12),
        "predicted_merge_breakeven_batches": (
            None if merge_econ.breakeven_batches == float("inf")
            else merge_econ.breakeven_batches
        ),
    }
    print(
        f"steady       {n_slides} slides x{batch}  segs<= {max_segments} "
        f"(cap {cap}; uncapped {max_uncapped})  dead<= {max_dead}  sync "
        f"mean {row['mean_warm_sync_seconds'] * 1e3:6.2f}ms max "
        f"{row['max_warm_sync_seconds'] * 1e3:6.2f}ms vs cold "
        f"{t_cold * 1e3:6.2f}ms  {m_big} cohort q: merged "
        f"{t_merged:6.3f}s vs uncapped {t_uncapped:6.3f}s vs mono "
        f"{t_mono:6.3f}s"
    )
    return row


def cache_row(grid: GridSpec, n: int, machine: MachineModel) -> dict:
    """A repeated dashboard slice: computed once, then served from LRU."""
    coords = make_coords(grid, n, seed=1)
    svc = DensityService(PointSet(coords), grid, machine=machine)
    T = grid.Gt // 2

    t0 = time.perf_counter()
    svc.query_slice(T)
    t_cold = time.perf_counter() - t0
    t_warm = best_of(lambda: svc.query_slice(T), 3)
    stats = svc.stats()
    row = {
        "path": "cache-hit",
        "n_events": n,
        "slice_T": T,
        "cold_seconds": t_cold,
        "warm_seconds": t_warm,
        "cache_hit_speedup": t_cold / max(t_warm, 1e-9),
        "cache_stats": stats["cache"],
    }
    print(
        f"cache-hit    n={n} slice T={T}  cold {t_cold:8.4f}s  warm "
        f"{t_warm * 1e3:8.4f}ms  ({row['cache_hit_speedup']:.0f}x)"
    )
    return row


def cpu_count() -> int:
    """CPUs this process may use (affinity mask when available)."""
    if hasattr(os, "sched_getaffinity"):
        return max(1, len(os.sched_getaffinity(0)))
    return max(1, os.cpu_count() or 1)


def workers_scaling_row(grid: GridSpec, n: int, m: int, repeats: int,
                        machine: MachineModel, workers: int = 4) -> dict:
    """Sharded scatter/gather vs the single-process direct engine.

    Measured only on a box with at least ``workers`` CPUs — on smaller
    machines the row is *recorded as skipped* (with the CPU count), never
    extrapolated or faked: a 4-worker pool time-slicing one core measures
    scheduler contention, not scaling.
    """
    cpus = cpu_count()
    row = {
        "path": "workers-scaling",
        "n_events": n,
        "n_queries": m,
        "workers": workers,
        "cpu_count": cpus,
    }
    if cpus < workers:
        row.update({
            "skipped": True,
            "reason": (
                f"requires >= {workers} CPUs for an honest scaling "
                f"measurement, have {cpus}"
            ),
        })
        print(f"workers      SKIPPED ({row['reason']})")
        return row
    kern = get_kernel("epanechnikov")
    coords = make_coords(grid, n)
    norm = grid.normalization(n)
    index = BucketIndex(grid, coords)
    rng = np.random.default_rng(5)
    span = np.array([grid.domain.gx, grid.domain.gy, grid.domain.gt])
    q = rng.uniform(0, span, size=(m, 3))

    ref = direct_sum(index, q, kern, norm)
    t_single = best_of(lambda: direct_sum(index, q, kern, norm), repeats)
    with ShardedDensityService(
        PointSet(coords), grid, workers=workers, machine=machine
    ) as svc:
        got = svc.query_points(q, backend="sharded")
        equiv = bool(np.allclose(got, ref, rtol=1e-12, atol=1e-300))
        t_sharded = best_of(
            lambda: svc.query_points(q, backend="sharded"), repeats
        )
    row.update({
        "skipped": False,
        "single_direct_seconds": t_single,
        "sharded_seconds": t_sharded,
        "workers_speedup": t_single / max(t_sharded, 1e-12),
        "sharded_matches_single_rtol_1e12": equiv,
    })
    print(
        f"workers      n={n} m={m} P={workers}  single {t_single:8.4f}s  "
        f"sharded {t_sharded:8.4f}s  ({row['workers_speedup']:.2f}x, "
        f"equiv={equiv})"
    )
    return row


#: Backends the comparison table always names; absent ones get a
#: ``skipped: true`` row with a reason — measured or skipped, never
#: extrapolated.
BACKEND_NAMES = ("numpy-ref", "numpy-fused", "numba")


def compute_backend_rows(grid: GridSpec, n: int, m: int,
                         repeats: int) -> list:
    """One scattered direct-sum row per compute backend.

    Same batch, same index — only the pair-evaluation backend changes,
    so the column measures exactly the seam the planner's per-backend
    unit costs price.  Every measured row carries an rtol=1e-12
    equivalence flag against the ``numpy-ref`` answers; JIT compile time
    is reported separately (``jit_warmup_seconds``), paid before timing.
    """
    kern = get_kernel("epanechnikov")
    coords = make_coords(grid, n)
    norm = grid.normalization(n)
    index = BucketIndex(grid, coords)
    rng = np.random.default_rng(9)
    span = np.array([grid.domain.gx, grid.domain.gy, grid.domain.gt])
    q = rng.uniform(0, span, size=(m, 3))

    ref = direct_sum(index, q, kern, norm, compute="numpy-ref")
    rows = []
    t_ref = None
    for name in BACKEND_NAMES:
        if name not in available_backends():
            rows.append({
                "path": "compute-backends",
                "backend": name,
                "skipped": True,
                "reason": f"backend {name!r} not importable in this "
                          f"environment",
            })
            print(f"compute      backend {name:12s} skipped (not importable)")
            continue
        got = direct_sum(index, q, kern, norm, compute=name)  # warm JIT
        t = best_of(lambda: direct_sum(index, q, kern, norm, compute=name),
                    repeats)
        if name == "numpy-ref":
            t_ref = t
        row = {
            "path": "compute-backends",
            "backend": name,
            "skipped": False,
            "n_events": n,
            "n_queries": m,
            "direct_seconds": t,
            "speedup_vs_numpy_ref": (t_ref / t) if t_ref else None,
            "equivalent_rtol_1e12": bool(
                np.allclose(got, ref, rtol=1e-12, atol=1e-18)
            ),
            "jit_warmup_seconds": get_backend(name).warmup_seconds,
        }
        rows.append(row)
        print(
            f"compute      backend {name:12s} n={n} m={m}  {t:8.4f}s "
            f"({row['speedup_vs_numpy_ref']:5.2f}x vs ref)  "
            f"equiv={row['equivalent_rtol_1e12']}"
        )
    return rows


def approx_tier_rows(n: int, m: int, eps_values, repeats: int,
                     machine: MachineModel) -> list:
    """Throughput-vs-eps sweep: importance sampler vs exact direct sum.

    A dense wide-bandwidth instance (every query's 3x3x3 candidate box
    covers most of the domain) is where exact direct summation pays
    O(n) per query and the sampler's sublinear budget matters.  Each
    eps row measures the exact and approximate wall times on the *same*
    batch, the realised p95 relative error against the exact answers
    (the statistical contract: must sit within the requested eps), seed
    reproducibility, and the calibrated planner's verdict — the planner
    must route the dense batch to the approx backend by itself.
    """
    kern = get_kernel("epanechnikov")
    dgrid = GridSpec(DomainSpec.from_voxels(64, 64, 64), hs=16.0, ht=16.0)
    coords = make_coords(dgrid, n, seed=3)
    norm = dgrid.normalization(n)
    index = BucketIndex(dgrid, coords)
    planner = QueryPlanner(CostModel(dgrid, PointSet(coords), machine))
    rng = np.random.default_rng(17)
    # Central queries: the candidate box reaches (nearly) every event.
    q = rng.uniform(16.0, 48.0, size=(m, 3))

    exact = direct_sum(index, q, kern, norm)
    t_exact = best_of(lambda: direct_sum(index, q, kern, norm), repeats)
    mean_cand = float(index.candidate_counts(q).mean())
    pos = exact > 0

    rows = []
    for eps in eps_values:
        stats: dict = {}
        approx = approx_sum(index, q, kern, norm, eps=eps, seed=7,
                            stats_out=stats)
        again = approx_sum(index, q, kern, norm, eps=eps, seed=7)
        reproducible = bool(np.array_equal(approx, again))
        t_approx = best_of(
            lambda: approx_sum(index, q, kern, norm, eps=eps, seed=7),
            repeats,
        )
        rel = np.abs(approx[pos] - exact[pos]) / exact[pos]
        p95 = float(np.percentile(rel, 95)) if rel.size else 0.0
        plan = planner.plan_points(index, q, volume_ready=False, eps=eps)
        row = {
            "path": "approx-tier",
            "eps": eps,
            "n_events": n,
            "n_queries": m,
            "mean_candidates": mean_cand,
            "exact_direct_seconds": t_exact,
            "approx_seconds": t_approx,
            "approx_speedup": t_exact / max(t_approx, 1e-12),
            "p95_rel_err": p95,
            "rel_err_within_eps": p95 <= eps,
            "sample_rows_drawn": int(stats.get("sample_rows_drawn", 0)),
            "exact_fallbacks": int(stats.get("exact_fallbacks", 0)),
            "reproducible_fixed_seed": reproducible,
            "planner_choice": plan.backend,
            "planner_picks_approx": plan.backend == "approx",
        }
        rows.append(row)
        print(
            f"approx-tier  n={n} m={m} eps={eps:<5g} exact {t_exact:8.4f}s  "
            f"approx {t_approx:8.4f}s ({row['approx_speedup']:6.2f}x)  "
            f"p95 rel err {p95:.4f}  planner={plan.backend:6s} "
            f"repro={reproducible}"
        )
    return rows


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="seconds-scale subset (n=20k events), for CI")
    ap.add_argument("--out", type=Path, default=DEFAULT_OUT,
                    help="output JSON path (default: repo-root BENCH_query.json)")
    ap.add_argument("--results-dir", type=Path, default=None,
                    help="also write query_serving.json here for the "
                         "analysis.report shape checks")
    args = ap.parse_args(argv)

    grid = make_grid()
    if args.smoke:
        n, query_counts, repeats = 20_000, (10, 100_000), 1
        cohort_m, slide_batches, slide_m = 20_000, 4, 2_000
        steady_slides, steady_batch, steady_window, steady_m = 40, 250, 10, 5_000
        approx_n, approx_m = 60_000, 400
    else:
        n, query_counts, repeats = (
            100_000, (10, 100, 1_000, 10_000, 50_000, 200_000), 2
        )
        cohort_m, slide_batches, slide_m = 50_000, 10, 10_000
        steady_slides, steady_batch, steady_window, steady_m = (
            100, 1_000, 20, 50_000
        )
        approx_n, approx_m = 200_000, 2_000
    approx_eps = (0.3, 0.1, 0.05)

    machine = calibrate_serving()
    rows = crossover_rows(grid, n, query_counts, repeats, machine)
    smallest, largest = rows[0], rows[-1]
    cohort = cohort_row(grid, n, cohort_m, repeats)
    rows.append(cohort)
    slide = slide_row(grid, n, slide_batches, slide_m, machine)
    rows.append(slide)
    steady = steady_slides_row(
        grid, steady_slides, steady_batch, steady_window, steady_m, machine
    )
    rows.append(steady)
    cache = cache_row(grid, n, machine)
    rows.append(cache)
    workers = workers_scaling_row(grid, n, cohort_m, repeats, machine)
    rows.append(workers)
    approx = approx_tier_rows(approx_n, approx_m, approx_eps, repeats, machine)
    rows.extend(approx)
    approx_01 = next(r for r in approx if r["eps"] == 0.1)
    backend_rows = compute_backend_rows(grid, n, cohort_m, repeats)
    rows.extend(backend_rows)

    acceptance = {
        "case": f"clustered n={n}, grid {'x'.join(map(str, GRID_VOXELS))}",
        "direct_sum_matches_stamp_rtol_1e6": all(
            r["direct_matches_stamp_rtol_1e6"]
            for r in rows if r["path"] == "crossover"
        ),
        "direct_wins_smallest_batch": smallest["measured_winner"] == "direct",
        "lookup_wins_largest_batch": largest["measured_winner"] == "lookup",
        "planner_picks_direct_for_few": smallest["planner_choice"] == "direct",
        "planner_picks_lookup_for_many": largest["planner_choice"] == "lookup",
        "cohort_matches_grouped_rtol_1e12":
            cohort["cohort_matches_grouped_rtol_1e12"],
        "cohort_speedup": cohort["cohort_speedup"],
        "cohort_not_slower_than_grouped": cohort["cohort_speedup"] >= 1.0,
        "cohort_speedup_ge_2x": cohort["cohort_speedup"] >= 2.0,
        "index_sync_rebucketed_events": slide["events_rebucketed_after_slide"],
        "index_sync_obatch": slide["sync_obatch"],
        "slide_warm_matches_cold": slide["warm_matches_cold_rtol_1e9"],
        "steady_max_live_segments": steady["max_live_segments"],
        "steady_segments_bounded_by_cap": steady["segments_bounded_by_cap"],
        "steady_dead_rows_within_budget": steady["dead_rows_within_budget"],
        "steady_bucketed_obatch": steady["bucketed_per_slide_obatch"],
        "steady_warm_matches_cold": steady["warm_matches_cold_rtol_1e9"],
        "steady_merged_vs_uncapped_latency_ratio": steady[
            "merged_vs_uncapped_latency_ratio"
        ],
        # The merge policy must bound probe cost: the capped index never
        # loses to the uncapped segment pileup on the big cohort batch
        # (the 50k cohort row itself is gated by cohort_speedup above —
        # that is the no-regression check for the engine).
        "steady_merge_bounds_probe_cost": steady[
            "merged_vs_uncapped_latency_ratio"
        ] <= 1.1,
        "cache_hit_speedup": cache["cache_hit_speedup"],
        "cache_hit_faster": cache["cache_hit_speedup"] > 2.0,
        # Workers-scaling is measured only on a >= 4-core box; on smaller
        # machines the row records the CPU count and a skip reason, and
        # the acceptance values stay None (skipped, never faked).
        "workers_scaling_cpu_count": workers["cpu_count"],
        "workers_scaling_skipped": workers["skipped"],
        "workers_speedup_at_4": (
            None if workers["skipped"] else workers["workers_speedup"]
        ),
        "workers_speedup_ge_1_8x": (
            None if workers["skipped"]
            else workers["workers_speedup"] >= 1.8
        ),
        "sharded_matches_single_rtol_1e12": (
            None if workers["skipped"]
            else workers["sharded_matches_single_rtol_1e12"]
        ),
        # Approximate tier: the statistical contract holds at every
        # budget (measured p95 relative error within the requested eps),
        # the sampler is measured — not extrapolated — to beat the exact
        # direct sum on the dense batch at eps=0.1, and the calibrated
        # planner routes that batch to the approx backend on its own.
        "approx_rel_err_within_eps_all": all(
            r["rel_err_within_eps"] for r in approx
        ),
        "approx_reproducible_fixed_seed": all(
            r["reproducible_fixed_seed"] for r in approx
        ),
        "approx_p95_rel_err_at_eps_0_1": approx_01["p95_rel_err"],
        "approx_speedup_at_eps_0_1": approx_01["approx_speedup"],
        "approx_beats_direct_at_eps_0_1": approx_01["approx_speedup"] > 1.0,
        "approx_planner_picks_approx_at_eps_0_1":
            approx_01["planner_picks_approx"],
        # Per-backend direct-sum columns: measured (or skipped with a
        # reason) on the same scattered batch; every measured backend
        # must agree with numpy-ref at rtol=1e-12.
        "compute_backends_measured": [
            r["backend"] for r in backend_rows if not r["skipped"]
        ],
        "compute_backends_skipped": [
            r["backend"] for r in backend_rows if r["skipped"]
        ],
        "compute_backends_equivalent_rtol_1e12": all(
            r["equivalent_rtol_1e12"]
            for r in backend_rows if not r["skipped"]
        ),
    }
    payload = {
        "benchmark": "query_serving",
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "smoke": args.smoke,
        "config": {
            "grid_voxels": list(GRID_VOXELS),
            "hs": HS,
            "ht": HT,
            "n_events": n,
            "query_counts": list(query_counts),
            "cohort_queries": cohort_m,
            "slide_batches": slide_batches,
            "kernel": "epanechnikov",
            "cpu_count": cpu_count(),
            "approx_n_events": approx_n,
            "approx_queries": approx_m,
            "approx_eps_values": list(approx_eps),
            "approx_grid_voxels": [64, 64, 64],
            "approx_hs_ht": 16.0,
        },
        "note": (
            "crossover = answering m voxel-center point queries by direct "
            "kernel sums over the bucket index vs materialising the volume "
            "once (build) and trilinearly sampling it; lookup_cold = build "
            "+ sample, the planner's cold-volume comparison.  "
            "cohort-speedup = the cohort-vectorised direct-sum engine vs "
            "the retained per-group walk on one scattered batch.  "
            "slide-sync = a slide_window absorbed by the incremental "
            "per-batch index (re-bucketed events ~ batch) vs a cold "
            "rebuild (~ n).  steady-slides = sustained tiny-batch slides "
            "through one service: merge policy caps the live segments, "
            "compaction debt stays under budget (paid in sync, off the "
            "remove path), per-sync bucketing stays O(arriving batch), "
            "and the capped index's big cohort batch never loses to the "
            "uncapped segment pileup.  cache-hit = a repeated dashboard "
            "slice served from the version-keyed LRU vs its first "
            "computation.  workers-scaling = 4 shard-owning worker "
            "processes answering one scattered batch by scatter/gather "
            "vs the single-process direct engine; measured only with "
            ">= 4 CPUs, recorded as skipped (with cpu_count) otherwise.  "
            "approx-tier = the bucket-importance sampler vs the exact "
            "direct sum on a dense wide-bandwidth batch (every query's "
            "candidate box covers most events) at several error budgets: "
            "realised p95 relative error vs the exact answers must sit "
            "within each requested eps, the speedup is measured on the "
            "same batch, and the calibrated planner must pick the approx "
            "backend for the dense batch unprompted."
        ),
        "results": rows,
        "acceptance": acceptance,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    if args.results_dir is not None:
        args.results_dir.mkdir(parents=True, exist_ok=True)
        mirror = args.results_dir / "query_serving.json"
        mirror.write_text(json.dumps({"rows": rows}, indent=2) + "\n")
        print(f"wrote {mirror}")
    print(f"acceptance: {json.dumps(acceptance, indent=2)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
