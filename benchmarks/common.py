"""Shared infrastructure for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper's
Section 6: it runs the relevant algorithms on the (scaled) Table 2
instances, prints the same rows/series the paper reports, and appends
machine-readable JSON to ``results/`` (consumed when writing
EXPERIMENTS.md).

Conventions
-----------
* The sequential baseline for every speedup is measured PB-SYM on the
  same instance (the paper's convention).
* Parallel numbers use the ``simulated`` backend: real task costs, virtual
  processors (see DESIGN.md substitutions); ``P=16`` matches the paper's
  machine.
* pytest-benchmark runs each figure cell once (``rounds=1``): the cells
  are whole-algorithm executions, not microbenchmarks.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.algorithms import pb_sym
from repro.algorithms.base import STKDEResult, get_algorithm
from repro.core.grid import GridSpec, PointSet
from repro.data.datasets import Instance, get_instance, instance_names, iter_instances

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: The paper's machine has 16 cores; every 16-thread figure uses this.
PAPER_P = 16

#: The paper's decomposition sweep (Figures 9-14).
DECOMPOSITIONS = (1, 2, 4, 8, 16, 32, 64)

#: Instance subsets per dataset, in Table 2 order.
ALL_INSTANCES = instance_names()

_BASELINE_CACHE: Dict[Tuple[str, str], float] = {}
_INSTANCE_CACHE: Dict[Tuple[str, str], Tuple[GridSpec, PointSet]] = {}


def load_instance(name: str, scale: str = "bench") -> Tuple[Instance, GridSpec, PointSet]:
    """Instance + grid + points, cached across benchmarks in a session."""
    inst = get_instance(name, scale)
    key = (name, scale)
    if key not in _INSTANCE_CACHE:
        _INSTANCE_CACHE[key] = (inst.grid(), inst.points())
    grid, pts = _INSTANCE_CACHE[key]
    return inst, grid, pts


def pb_sym_baseline(name: str, scale: str = "bench") -> float:
    """Measured sequential PB-SYM seconds for an instance (cached)."""
    key = (name, scale)
    if key not in _BASELINE_CACHE:
        _, grid, pts = load_instance(name, scale)
        res = pb_sym(pts, grid)
        _BASELINE_CACHE[key] = res.elapsed
    return _BASELINE_CACHE[key]


def run_algorithm(
    name: str,
    instance: str,
    *,
    scale: str = "bench",
    P: int = PAPER_P,
    decomposition: Optional[Tuple[int, int, int]] = None,
    use_memory_budget: bool = False,
    backend: str = "simulated",
) -> STKDEResult:
    """Run a registered algorithm on an instance with standard plumbing."""
    inst, grid, pts = load_instance(instance, scale)
    fn = get_algorithm(name)
    kwargs: Dict = {}
    if getattr(fn, "is_parallel", False):
        kwargs["P"] = P
        kwargs["backend"] = backend
        if decomposition is not None and name != "pb-sym-dr":
            kwargs["decomposition"] = decomposition
        if use_memory_budget and name in ("pb-sym-dr", "pb-sym-pd-rep"):
            kwargs["memory_budget_bytes"] = inst.memory_budget_bytes
    return fn(pts, grid, **kwargs)


def record(experiment: str, rows: List[Dict]) -> Path:
    """Append experiment rows to ``results/<experiment>.json``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{experiment}.json"
    payload = {
        "experiment": experiment,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "rows": rows,
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, default=str)
    return path


def fmt_seconds(s: float) -> str:
    if s != s:  # NaN
        return "      --"
    if s >= 100:
        return f"{s:8.1f}"
    return f"{s:8.3f}"


def print_series_header(title: str, columns: Sequence[str]) -> None:
    print(f"\n=== {title} ===")
    print("instance".ljust(20) + "".join(f"{c:>12s}" for c in columns))
