"""Figure 8 — PB-SYM-DR speedup for 1..16 threads, with OOMs.

Runs domain replication at P in {1, 2, 4, 8, 16} under each instance's
paper-proportional memory budget.  The paper's claims:

* instances with high initialisation cost get speedup *below 1* (threads
  spend their time zeroing and reducing replicas);
* only compute-heavy instances (3 PollenUS + eBird-Lr) exceed 8 at P=16;
* Flu-Hr runs out of memory at 8 and 16 threads; eBird-Hr cannot
  replicate at all.

Standalone: ``python benchmarks/bench_fig8_dr_speedup.py``
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

import pytest

from repro.parallel import MemoryBudgetExceeded, pb_sym_dr

from .common import ALL_INSTANCES, load_instance, pb_sym_baseline, record
from .conftest import note_experiment

PS = (1, 2, 4, 8, 16)
_CELLS: Dict[Tuple[str, int], float] = {}  # speedup or nan for OOM


def run_dr(instance: str, P: int) -> float:
    key = (instance, P)
    if key in _CELLS:
        return _CELLS[key]
    inst, grid, pts = load_instance(instance)
    try:
        res = pb_sym_dr(
            pts, grid, P=P, backend="simulated",
            memory_budget_bytes=inst.memory_budget_bytes,
        )
        sp = pb_sym_baseline(instance) / res.meta["makespan"]
    except MemoryBudgetExceeded:
        sp = math.nan
    _CELLS[key] = sp
    return sp


@pytest.mark.parametrize("instance", ALL_INSTANCES)
def test_fig8_dr(benchmark, instance):
    def sweep():
        return [run_dr(instance, P) for P in PS]

    speedups = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert len(speedups) == len(PS)


def test_fig8_report(benchmark):
    def report():
        rows = []
        print("\nFigure 8 — PB-SYM-DR speedup by thread count (nan = OOM)")
        print(f"{'instance':18s}" + "".join(f"{f'P={P}':>9s}" for P in PS))
        for inst in ALL_INSTANCES:
            sps = [run_dr(inst, P) for P in PS]
            row = {"instance": inst}
            row.update({f"P{P}": s for P, s in zip(PS, sps)})
            rows.append(row)
            cells = "".join(
                f"{'OOM':>9s}" if s != s else f"{s:8.2f}x" for s in sps
            )
            print(f"{inst:18s}{cells}")
        return rows

    rows = benchmark.pedantic(report, rounds=1, iterations=1)
    record("fig8_dr_speedup", rows)
    note_experiment("fig8_dr_speedup")


if __name__ == "__main__":
    class _B:
        def pedantic(self, fn, args=(), rounds=1, iterations=1):
            return fn(*args)

    test_fig8_report(_B())
