"""Table 3 — sequential algorithm runtimes and the PB-SYM speedup.

Runs VB, VB-DEC, PB, PB-DISK, PB-BAR and PB-SYM on every instance and
prints the Table 3 layout with the paper's numbers alongside.  Cells the
paper leaves blank (too expensive on their machine) are skipped here too.

The voxel-based algorithms run at ``table3`` scale — VB's
``Theta(voxels * n)`` cost is the whole point of the table, and even
scaled down it is 2-4 orders of magnitude above PB-SYM.  What must
reproduce (and is asserted in EXPERIMENTS.md):

* the ordering VB >> VB-DEC >> PB > PB-BAR > PB-DISK > PB-SYM;
* the PB-SYM/PB speedup growing with bandwidth, ~1 on low-bandwidth or
  init-dominated instances, largest on PollenUS-Hb-like instances.

Standalone: ``python benchmarks/bench_table3_sequential.py``
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import pytest

from repro.algorithms.base import get_algorithm
from repro.analysis.validate import assert_equivalent

from .common import fmt_seconds, load_instance, record
from .conftest import note_experiment
from .paper_expectations import TABLE3, TABLE3_COLUMNS, table3_has

SCALE = "table3"
_CELLS: Dict[str, Dict[str, float]] = {}

INSTANCES = list(TABLE3)


def run_cell(instance: str, algorithm: str) -> float:
    _, grid, pts = load_instance(instance, SCALE)
    fn = get_algorithm(algorithm)
    # Point-based cells are milliseconds at this scale: take the best of
    # three runs to shed scheduler noise.  The voxel-based cells run once
    # (they are seconds-to-minutes, and their margin is orders of
    # magnitude).
    reps = 1 if algorithm.startswith("vb") else 3
    elapsed = min(fn(pts, grid).elapsed for _ in range(reps))
    _CELLS.setdefault(instance, {})[algorithm] = elapsed
    return elapsed


@pytest.mark.parametrize("instance", INSTANCES)
@pytest.mark.parametrize("algorithm", TABLE3_COLUMNS)
def test_table3_cell(benchmark, instance, algorithm):
    if not table3_has(instance, algorithm):
        pytest.skip(f"paper leaves {instance}/{algorithm} blank")
    benchmark.pedantic(run_cell, args=(instance, algorithm), rounds=1, iterations=1)


@pytest.mark.parametrize("instance", ["Dengue_Lr-Hb", "PollenUS_Hr-Mb", "Flu_Lr-Hb"])
def test_table3_equivalence_spot_check(benchmark, instance):
    """Before trusting timings, re-check the algorithms agree on volume."""

    def check():
        _, grid, pts = load_instance(instance, SCALE)
        ref = get_algorithm("pb-sym")(pts, grid)
        for algo in ("vb-dec", "pb", "pb-disk", "pb-bar"):
            out = get_algorithm(algo)(pts, grid)
            assert_equivalent(ref, out, context=f"{instance}/{algo}")

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_table3_report(benchmark):
    def report():
        rows = []
        print("\nTable 3 — sequential runtimes (seconds; paper values in parens)")
        print(f"{'instance':18s}" + "".join(f"{c:>19s}" for c in TABLE3_COLUMNS)
              + f"{'pb-sym/pb':>12s}")
        for inst in INSTANCES:
            cells = _CELLS.get(inst, {})
            # Fill any cells not yet run (standalone mode).
            for algo in TABLE3_COLUMNS:
                if algo not in cells and table3_has(inst, algo):
                    run_cell(inst, algo)
            cells = _CELLS.get(inst, {})
            line = f"{inst:18s}"
            row = {"instance": inst}
            for i, algo in enumerate(TABLE3_COLUMNS):
                ours = cells.get(algo)
                paper = TABLE3[inst][i]
                row[algo] = ours
                row[f"paper_{algo}"] = paper
                if ours is None:
                    line += f"{'--':>19s}"
                else:
                    ptxt = f"({paper:g})" if paper is not None else ""
                    line += f"{fmt_seconds(ours)}{ptxt:>10s}"
            if cells.get("pb") and cells.get("pb-sym"):
                sp = cells["pb"] / cells["pb-sym"]
                paper_sp = TABLE3[inst][6]
                row["speedup"] = sp
                row["paper_speedup"] = paper_sp
                line += f"  {sp:5.2f}x ({paper_sp if paper_sp else '--'})"
            print(line)
            rows.append(row)
        return rows

    rows = benchmark.pedantic(report, rounds=1, iterations=1)
    record("table3_sequential", rows)
    note_experiment("table3_sequential")


if __name__ == "__main__":
    for inst in INSTANCES:
        for algo in TABLE3_COLUMNS:
            if table3_has(inst, algo):
                run_cell(inst, algo)

    class _B:  # minimal stand-in for the benchmark fixture
        def pedantic(self, fn, args=(), rounds=1, iterations=1):
            return fn(*args)

    test_table3_report(_B())
