"""Ablation — sensitivity to the memory-bandwidth saturation cap.

DESIGN.md models parallel volume initialisation as saturating at ~3x
(the paper's measured value on its dual-socket Xeon).  This ablation
re-simulates DD at P=16 under caps {1, 3, 16} to show which conclusions
depend on the cap:

* on init-dominated instances (Flu) the end-to-end speedup tracks the cap
  almost 1:1 — the paper's "even if compute were free, speedup would be
  3.7" observation;
* on compute-dominated instances (PollenUS-Hb) the cap barely matters.

Standalone: ``python benchmarks/bench_ablation_bandwidth.py``
"""

from __future__ import annotations

from typing import Dict, Tuple

import pytest

from repro.parallel import pb_sym_dd
from repro.parallel.schedule import BandwidthModel

from .common import PAPER_P, load_instance, pb_sym_baseline, record
from .conftest import note_experiment

INSTANCES = ("Flu_Hr-Lb", "Flu_Mr-Lb", "Dengue_Lr-Lb", "PollenUS_Hr-Mb", "eBird_Lr-Hb")
CAPS = (1.0, 3.0, 16.0)
_CELLS: Dict[Tuple[str, float], float] = {}


def run_cell(instance: str, cap: float) -> float:
    key = (instance, cap)
    if key not in _CELLS:
        _, grid, pts = load_instance(instance)
        res = pb_sym_dd(
            pts, grid, P=PAPER_P, decomposition=(8, 8, 8),
            backend="simulated", bandwidth=BandwidthModel(cap=cap),
        )
        _CELLS[key] = pb_sym_baseline(instance) / res.meta["makespan"]
    return _CELLS[key]


@pytest.mark.parametrize("instance", INSTANCES)
def test_ablation_bandwidth(benchmark, instance):
    def sweep():
        return {cap: run_cell(instance, cap) for cap in CAPS}

    sps = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # More bandwidth never hurts *within one measurement* — but each cap
    # re-measures the serial tasks, so allow cross-run timing noise.
    assert sps[1.0] <= sps[3.0] * 1.3
    assert sps[3.0] <= sps[16.0] * 1.3


def test_ablation_bandwidth_report(benchmark):
    def report():
        rows = []
        print(f"\nAblation — DD speedup at P={PAPER_P} vs memory-bandwidth cap")
        print(f"{'instance':18s}" + "".join(f"{f'cap={c:g}':>10s}" for c in CAPS)
              + f"{'cap-bound?':>12s}")
        for inst in INSTANCES:
            sps = {cap: run_cell(inst, cap) for cap in CAPS}
            sensitive = sps[16.0] / max(sps[1.0], 1e-9)
            rows.append({"instance": inst,
                         **{f"cap_{c:g}": s for c, s in sps.items()},
                         "sensitivity": sensitive})
            cells = "".join(f"{sps[c]:9.2f}x" for c in CAPS)
            tag = "yes" if sensitive > 1.5 else "no"
            print(f"{inst:18s}{cells}{tag:>12s}")
        return rows

    rows = benchmark.pedantic(report, rounds=1, iterations=1)
    record("ablation_bandwidth", rows)
    note_experiment("ablation_bandwidth")


if __name__ == "__main__":
    class _B:
        def pedantic(self, fn, args=(), rounds=1, iterations=1):
            return fn(*args)

    test_ablation_bandwidth_report(_B())
