"""Figure 7 — PB-SYM runtime breakdown: initialisation vs compute.

For every instance, runs PB-SYM and reports the fraction of time spent
zeroing the volume versus stamping cylinders.  The paper's claim: the Flu
instances are mostly initialisation (31K points spanning the planet),
while PollenUS-Hb/eBird instances are almost pure compute.

Standalone: ``python benchmarks/bench_fig7_breakdown.py``
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro.algorithms import pb_sym
from repro.analysis.metrics import phase_breakdown

from .common import ALL_INSTANCES, load_instance, record
from .conftest import note_experiment

_ROWS: Dict[str, dict] = {}


def run_breakdown(instance: str) -> dict:
    if instance in _ROWS:
        return _ROWS[instance]
    _, grid, pts = load_instance(instance)
    from repro.core import WorkCounter

    counter = WorkCounter()
    res = pb_sym(pts, grid, counter=counter)
    frac = phase_breakdown(res)
    # Two views of the same split.  Wall time is what we measure, but our
    # substrate's per-point dispatch cost is far heavier relative to
    # NumPy's vectorised zeroing than C++ kernels are to memset, so the
    # *work* fractions (voxels initialised vs cylinder operations) are the
    # apples-to-apples comparison with the paper's Figure 7 regimes.
    compute_ops = counter.madds + counter.spatial_evals + counter.temporal_evals
    total_ops = counter.init_writes + compute_ops
    row = {
        "instance": instance,
        "init_fraction": frac.get("init", 0.0),
        "compute_fraction": frac.get("compute", 0.0),
        "init_work_fraction": counter.init_writes / total_ops,
        "compute_work_fraction": compute_ops / total_ops,
        "total_seconds": res.elapsed,
    }
    _ROWS[instance] = row
    return row


@pytest.mark.parametrize("instance", ALL_INSTANCES)
def test_fig7_breakdown(benchmark, instance):
    row = benchmark.pedantic(run_breakdown, args=(instance,), rounds=1, iterations=1)
    assert 0.99 < row["init_fraction"] + row["compute_fraction"] < 1.01


def test_fig7_report(benchmark):
    def report():
        rows = [run_breakdown(i) for i in ALL_INSTANCES]
        print("\nFigure 7 — PB-SYM breakdown: wall time and logical work")
        print(f"{'instance':18s} {'init(t)':>8s} {'comp(t)':>8s} "
              f"{'init(w)':>8s} {'comp(w)':>8s} {'total':>9s}  work bar")
        for r in rows:
            bar = "I" * int(round(r["init_work_fraction"] * 30)) + \
                  "c" * int(round(r["compute_work_fraction"] * 30))
            print(f"{r['instance']:18s} {r['init_fraction']:8.1%} "
                  f"{r['compute_fraction']:8.1%} {r['init_work_fraction']:8.1%} "
                  f"{r['compute_work_fraction']:8.1%} {r['total_seconds']:8.3f}s  {bar}")
        return rows

    rows = benchmark.pedantic(report, rounds=1, iterations=1)
    record("fig7_breakdown", rows)
    note_experiment("fig7_breakdown")


if __name__ == "__main__":
    class _B:
        def pedantic(self, fn, args=(), rounds=1, iterations=1):
            return fn(*args)

    test_fig7_report(_B())
