"""Benchmark: MTTR and availability of the self-healing sharded tier.

Measures the :class:`repro.serve.ShardSupervisor` recovery contract on a
live sharded service:

1. **MTTR vs state size**: kill one shard worker at several live-state
   sizes and time the supervised recovery (respawn + replay of the
   horizon-truncated mutation log).  Each row records the measured wall
   time, the replayed rows/batches, and the cost model's
   :meth:`~repro.analysis.model.CostModel.predict_recovery` price from a
   :func:`~repro.serve.calibrate.calibrate_recovery`-probed machine —
   acceptance: every recovered shard answers queries identically to a
   cold single-process rebuild at ``rtol=1e-12``.
2. **Throughput through a fault**: a closed query loop with a worker
   killed mid-stream.  Records steady-state qps before the fault, the
   latency of the query that absorbs the recovery (the availability
   dip), and qps after — acceptance: post-recovery throughput within 2x
   of the pre-fault rate and exactly one restart consumed.
3. **Degraded coverage**: with the restart budget exhausted
   (``max_restarts=0``) a dead shard stays down; ``on_shard_failure=
   "partial"`` reads return coverage-tagged :class:`PartialResult`
   lower bounds — acceptance: coverage lands in ``(0, 1)`` and the
   ``degraded_queries`` gauge moves.

Every number is measured in-process — the workers really die
(``os._exit``) and the supervisor really replays.

Writes ``BENCH_faults.json`` at the repository root (override with
``--out``); ``--results-dir DIR`` additionally writes ``DIR/faults
.json`` in the shape :mod:`repro.analysis.report` checks.  ``--smoke``
runs a seconds-scale subset with the same schema.

Run:  ``PYTHONPATH=src python benchmarks/bench_faults.py``
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.analysis.model import CostModel, MachineModel
from repro.core import DomainSpec, GridSpec, PointSet
from repro.core.incremental import IncrementalSTKDE
from repro.serve import (
    DensityService,
    PartialResult,
    ShardedDensityService,
    calibrate_ipc,
    calibrate_recovery,
)

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_faults.json"

GRID_VOXELS = (48, 40, 32)
HS, HT = 3.0, 2.0
RTOL = 1e-12


def make_grid() -> GridSpec:
    return GridSpec(DomainSpec.from_voxels(*GRID_VOXELS), hs=HS, ht=HT)


def span_of(grid: GridSpec) -> np.ndarray:
    d = grid.domain
    return np.array([d.gx, d.gy, d.gt])


def make_batches(grid: GridSpec, n: int, seed: int = 0):
    """The live feed: a few add batches plus one window slide, so the
    replay log holds a realistic op mix (not one monolithic batch)."""
    rng = np.random.default_rng(seed)
    span = span_of(grid)
    per = max(1, n // 4)
    adds = [rng.uniform(0, span, size=(per, 3)) for _ in range(3)]
    arriving = rng.uniform(0, span, size=(n - 3 * per, 3))
    arriving[:, 2] = grid.domain.t0 + grid.domain.gt * 0.85
    horizon = grid.domain.t0 + 0.1 * grid.domain.gt
    return adds, arriving, horizon


def feed(target, adds, arriving, horizon) -> None:
    for batch in adds:
        target.add(batch)
    target.slide_window(arriving, horizon)


def build_service(grid, adds, arriving, horizon, machine, **kw):
    svc = ShardedDensityService(
        None, grid, workers=2, machine=machine,
        restart_backoff_s=0.0, **kw,
    )
    feed(svc, adds, arriving, horizon)
    return svc


def cold_reference(grid, adds, arriving, horizon, machine) -> DensityService:
    inc = IncrementalSTKDE(grid)
    feed(inc, adds, arriving, horizon)
    return DensityService(inc, machine=machine)


def kill_worker(svc, s: int) -> None:
    """Make worker ``s`` die the way a segfault looks: os._exit, no reply."""
    svc._workers[s].send_op("crash")
    svc._workers[s]._proc.join(10.0)


# ----------------------------------------------------------------------
# Path 1: MTTR vs state size
# ----------------------------------------------------------------------
def mttr_row(grid, n, machine, model, queries, seed) -> dict:
    adds, arriving, horizon = make_batches(grid, n, seed)
    ref = cold_reference(grid, adds, arriving, horizon, machine)
    want = ref.query_points(queries, backend="direct")
    with build_service(grid, adds, arriving, horizon, machine) as svc:
        log = svc._sup.logs[1]
        state_rows, state_batches = log.rows, len(log)
        kill_worker(svc, 1)
        t0 = time.perf_counter()
        svc._sup.recover(1)
        mttr = time.perf_counter() - t0
        got = svc.query_points(queries)
        matches = bool(np.allclose(got, want, rtol=RTOL, atol=1e-300))
        restarts = svc.counter.shard_restarts
        replayed = svc.counter.shard_replayed_batches
    pred = model.predict_recovery(state_rows, state_batches)
    return {
        "path": "mttr",
        "n_events": n,
        "state_rows": state_rows,
        "state_batches": state_batches,
        "mttr_seconds": mttr,
        "predicted_seconds": pred.seconds,
        "predicted_spawn_seconds": pred.spawn_seconds,
        "predicted_ipc_seconds": pred.ipc_seconds,
        "predicted_restamp_seconds": pred.restamp_seconds,
        "shard_restarts": restarts,
        "shard_replayed_batches": replayed,
        "post_recovery_matches_cold_rtol_1e12": matches,
        "measured": True,
    }


# ----------------------------------------------------------------------
# Path 2: throughput through a fault
# ----------------------------------------------------------------------
def throughput_row(grid, n, machine, seed, *, probes, batch_rows) -> dict:
    adds, arriving, horizon = make_batches(grid, n, seed)
    rng = np.random.default_rng(seed + 1)
    span = span_of(grid)
    qs = rng.uniform(0, span, size=(batch_rows, 3))

    def clock(svc, k):
        lat = []
        for _ in range(k):
            t0 = time.perf_counter()
            svc.query_points(qs, backend="sharded")
            lat.append(time.perf_counter() - t0)
        return np.array(lat)

    with build_service(grid, adds, arriving, horizon, machine) as svc:
        clock(svc, 2)  # warm the pipes before the timed window
        before = clock(svc, probes)
        kill_worker(svc, 1)
        t0 = time.perf_counter()
        svc.query_points(qs, backend="sharded")  # absorbs the recovery
        recovery_query = time.perf_counter() - t0
        after = clock(svc, probes)
        restarts = svc.counter.shard_restarts
        retried = svc.counter.requests_retried
    qps_before = probes / before.sum()
    qps_after = probes / after.sum()
    return {
        "path": "recovery-throughput",
        "n_events": n,
        "probe_queries": probes,
        "batch_rows": batch_rows,
        "qps_before": qps_before,
        "qps_after": qps_after,
        "recovery_query_seconds": recovery_query,
        "dip_vs_median_query": recovery_query / float(np.median(before)),
        "qps_after_within_2x": bool(qps_after >= 0.5 * qps_before),
        "shard_restarts": restarts,
        "requests_retried": retried,
        "measured": True,
    }


# ----------------------------------------------------------------------
# Path 3: degraded coverage with the budget exhausted
# ----------------------------------------------------------------------
def degraded_row(grid, n, machine, seed) -> dict:
    adds, arriving, horizon = make_batches(grid, n, seed)
    rng = np.random.default_rng(seed + 2)
    queries = rng.uniform(0, span_of(grid), size=(64, 3))
    with build_service(
        grid, adds, arriving, horizon, machine,
        max_restarts=0, on_shard_failure="partial",
    ) as svc:
        kill_worker(svc, 1)
        out = svc.query_points(queries, backend="sharded")
        degraded = isinstance(out, PartialResult)
        coverage = float(out.coverage) if degraded else 1.0
        failed = list(out.failed_shards) if degraded else []
        gauge = svc.counter.degraded_queries
        down = svc._sup.down_shards()
    return {
        "path": "degraded",
        "n_events": n,
        "queries": queries.shape[0],
        "returned_partial": degraded,
        "coverage": coverage,
        "failed_shards": failed,
        "down_shards": down,
        "degraded_queries_gauge": gauge,
        "measured": True,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="seconds-scale subset, for CI")
    ap.add_argument("--out", type=Path, default=DEFAULT_OUT,
                    help="output JSON path (default: repo-root "
                         "BENCH_faults.json)")
    ap.add_argument("--results-dir", type=Path, default=None,
                    help="also write faults.json here for the "
                         "analysis.report shape checks")
    args = ap.parse_args(argv)

    grid = make_grid()
    sizes = [1_000, 4_000] if args.smoke else [2_000, 10_000, 40_000]
    probes = 5 if args.smoke else 15

    print("calibrating recovery machine (spawn + ipc probes) ...")
    base = MachineModel.nominal() if args.smoke else MachineModel.calibrate()
    machine = calibrate_recovery(calibrate_ipc(base))
    model = CostModel(grid, PointSet(np.empty((0, 3))), machine)
    print(f"  c_spawn={machine.c_spawn:.4f}s  c_msg={machine.c_msg:.2e}s")

    rng = np.random.default_rng(99)
    queries = rng.uniform(0, span_of(grid), size=(80, 3))

    rows = []
    print("mttr vs state size ...")
    for i, n in enumerate(sizes):
        row = mttr_row(grid, n, machine, model, queries, seed=10 + i)
        rows.append(row)
        print(
            f"  n={n:>6}: mttr {row['mttr_seconds'] * 1e3:7.1f} ms "
            f"(predicted {row['predicted_seconds'] * 1e3:7.1f} ms), "
            f"{row['state_rows']} rows / {row['state_batches']} batches "
            f"replayed, matches cold rebuild: "
            f"{row['post_recovery_matches_cold_rtol_1e12']}"
        )

    print("throughput through a fault ...")
    tput = throughput_row(
        grid, sizes[-1], machine, seed=33, probes=probes, batch_rows=64
    )
    rows.append(tput)
    print(
        f"  qps {tput['qps_before']:.1f} -> recovery query "
        f"{tput['recovery_query_seconds'] * 1e3:.1f} ms "
        f"({tput['dip_vs_median_query']:.1f}x a median query) "
        f"-> qps {tput['qps_after']:.1f}"
    )

    print("degraded coverage with budget exhausted ...")
    deg = degraded_row(grid, sizes[0], machine, seed=55)
    rows.append(deg)
    print(
        f"  partial={deg['returned_partial']} "
        f"coverage={deg['coverage']:.3f} "
        f"failed_shards={deg['failed_shards']}"
    )

    mttr_rows = [r for r in rows if r["path"] == "mttr"]
    acceptance = {
        "case": f"live 2-shard service, grid "
                f"{'x'.join(map(str, GRID_VOXELS))}",
        "post_recovery_matches_cold_rtol_1e12": all(
            r["post_recovery_matches_cold_rtol_1e12"] for r in mttr_rows
        ),
        "mttr_measured_at_every_size": all(
            r["mttr_seconds"] > 0 for r in mttr_rows
        ),
        "restart_counters_recorded": all(
            r["shard_restarts"] >= 1 for r in mttr_rows
        ),
        "throughput_recovers_within_2x": tput["qps_after_within_2x"],
        "exactly_one_restart_in_throughput_run":
            tput["shard_restarts"] == 1,
        "degraded_coverage_in_unit_interval":
            deg["returned_partial"] and 0.0 < deg["coverage"] < 1.0,
        "degraded_gauge_moves": deg["degraded_queries_gauge"] > 0,
    }
    payload = {
        "benchmark": "fault_tolerance",
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "smoke": args.smoke,
        "config": {
            "grid_voxels": list(GRID_VOXELS),
            "hs": HS,
            "ht": HT,
            "state_sizes": sizes,
            "workers": 2,
            "probe_queries": probes,
            "kernel": "epanechnikov",
            "c_spawn_seconds": machine.c_spawn,
        },
        "note": (
            "mttr = wall time of one supervised recovery (respawn + "
            "replay of the horizon-truncated mutation log) after a "
            "worker os._exit mid-serving, vs the cost model's "
            "predict_recovery price from a calibrate_recovery-probed "
            "machine; the recovered shard must answer identically to a "
            "cold single-process rebuild at rtol=1e-12.  "
            "recovery-throughput = closed query loop with a mid-stream "
            "kill: steady qps before, the latency of the query that "
            "absorbs the recovery (the availability dip), qps after.  "
            "degraded = restart budget exhausted, on_shard_failure="
            "'partial': coverage-tagged PartialResult lower bounds from "
            "the surviving shards."
        ),
        "results": rows,
        "acceptance": acceptance,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    if args.results_dir is not None:
        args.results_dir.mkdir(parents=True, exist_ok=True)
        mirror = args.results_dir / "faults.json"
        mirror.write_text(json.dumps({"rows": rows}, indent=2) + "\n")
        print(f"wrote {mirror}")
    print(f"acceptance: {json.dumps(acceptance, indent=2)}")
    return int(not all(acceptance[k] for k in acceptance if k != "case"))


if __name__ == "__main__":
    raise SystemExit(main())
