"""Shared decomposition sweeps, computed once per session.

Figures 9 and 10 both need the DD decomposition sweep (the simulated
backend's single serial execution yields the 1-thread total *and* the
16-thread virtual makespan), and Figures 11/13 need the PD/PD-SCHED
sweeps.  These helpers run each (instance, decomposition) cell once and
cache it for every consumer.

Cells whose predicted replica count is prohibitive are skipped, exactly as
the paper skips its most expensive sweep cells ("except on the eBird
Hr-Hb where such a test is computationally expensive", Section 6.3).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.algorithms.base import STKDEResult, get_algorithm
from repro.parallel.partition import BlockDecomposition

from .common import DECOMPOSITIONS, PAPER_P, load_instance, pb_sym_baseline

#: Skip a DD cell when the replicated stamp count exceeds this multiple of
#: the unreplicated one.  Clipped replica stamps cost roughly a quarter of
#: a full stamp, so 40 replicas/point is ~10x runtime — beyond that the
#: cell only proves the overhead keeps growing, at minutes of runtime
#: (the paper likewise skips its most expensive cells, Section 6.3).
MAX_DD_BLOWUP = 40.0

_DD_CACHE: Dict[Tuple[str, int], Optional[dict]] = {}
_PD_CACHE: Dict[Tuple[str, int, str], Optional[dict]] = {}


def dd_cell(instance: str, k: int, scale: str = "bench") -> Optional[dict]:
    """One DD sweep cell: decomposition ``k^3`` on ``instance``.

    Returns ``None`` for skipped (too expensive) cells, else a dict with
    the serial total, the simulated P=16 makespan, and overhead metadata.
    """
    key = (instance, k)
    if key in _DD_CACHE:
        return _DD_CACHE[key]
    inst, grid, pts = load_instance(instance, scale)
    dec = BlockDecomposition(
        grid, min(k, grid.Gx), min(k, grid.Gy), min(k, grid.Gt)
    )
    blowup = dec.count_replicas(pts) / pts.n
    if blowup > MAX_DD_BLOWUP:
        _DD_CACHE[key] = None
        return None
    res = get_algorithm("pb-sym-dd")(
        pts, grid, decomposition=(k, k, k), P=PAPER_P, backend="simulated"
    )
    serial_total = (
        res.timer.seconds.get("bin", 0.0)
        + res.timer.seconds.get("init", 0.0)
        + res.timer.seconds.get("compute", 0.0)
    )
    cell = {
        "instance": instance,
        "k": k,
        "decomposition": res.meta["decomposition"],
        "serial_seconds": serial_total,
        "makespan_p16": res.meta["makespan"],
        "replication_factor": res.meta["replication_factor"],
        "occupied_blocks": res.meta["occupied_blocks"],
        "baseline_seconds": pb_sym_baseline(instance, scale),
    }
    cell["overhead_vs_pb_sym"] = cell["serial_seconds"] / cell["baseline_seconds"]
    cell["speedup_p16"] = cell["baseline_seconds"] / cell["makespan_p16"]
    _DD_CACHE[key] = cell
    return cell


def pd_cell(
    instance: str, k: int, scheduler: str, scale: str = "bench"
) -> Optional[dict]:
    """One PD sweep cell (``scheduler`` in ``{"parity", "sched"}``)."""
    key = (instance, k, scheduler)
    if key in _PD_CACHE:
        return _PD_CACHE[key]
    inst, grid, pts = load_instance(instance, scale)
    name = "pb-sym-pd" if scheduler == "parity" else "pb-sym-pd-sched"
    res = get_algorithm(name)(
        pts, grid, decomposition=(k, k, k), P=PAPER_P, backend="simulated"
    )
    baseline = pb_sym_baseline(instance, scale)
    cell = {
        "instance": instance,
        "k": k,
        "scheduler": scheduler,
        "decomposition": res.meta["decomposition"],
        "makespan_p16": res.meta["makespan"],
        "speedup_p16": baseline / res.meta["makespan"],
        "critical_path_ratio": res.meta["critical_path_ratio"],
        "n_colors": res.meta["n_colors"],
        "occupied_blocks": res.meta["occupied_blocks"],
        "baseline_seconds": baseline,
    }
    _PD_CACHE[key] = cell
    return cell


def dedupe_pd_ks(instance: str, scale: str = "bench") -> Dict[int, int]:
    """Map requested k -> realised decomposition key, deduplicated.

    PD clamps undersized decompositions, so 16^3/32^3/64^3 often collapse
    to the same realised decomposition; running them repeatedly would
    triple the sweep cost for identical cells.
    """
    _, grid, _ = load_instance(instance, scale)
    out: Dict[int, int] = {}
    seen: Dict[Tuple[int, int, int], int] = {}
    for k in DECOMPOSITIONS:
        dec = BlockDecomposition.adjusted_for_pd(grid, k, k, k)
        if dec.shape in seen:
            out[k] = seen[dec.shape]
        else:
            seen[dec.shape] = k
            out[k] = k
    return out
