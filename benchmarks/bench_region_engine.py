"""Benchmark: the unified region-accumulation engine.

Measures the write paths the engine unified:

1. **Bbox-sharded threads** (:func:`repro.parallel.executors.run_threaded_stamping`)
   against the serial engine — wall time *and* peak shard-buffer bytes vs
   the ``P`` full private volumes the pre-regions path allocated.  The
   acceptance gate requires the bbox buffers to come in strictly below
   ``P`` full volumes on the clustered ``n=1e5`` instance.
2. **Incremental sliding windows**: one `slide_window` on a warm
   region-cached estimator vs recomputing the window from scratch with
   sequential PB-SYM.
3. **Slide pipeline (t-slabbed retirement)**: sustained slides cutting
   through a clustered ``n=1e5`` window — t-slab caches (subtract
   expired slabs + restamp one straddle) vs the restamp-survivors
   baseline (``t_slab_voxels=None``), sweeping slab thickness.  The
   acceptance gate requires >= 3x fewer kernel evaluations
   (WorkCounter) and less wall time, with every config equivalent to a
   cold recompute at ``rtol=1e-12`` — asserted in the bench itself.
4. **VB voxel tiles** through the engine vs the retained legacy tile loop
   (small instance — VB is Theta(voxels * points)).

Every cell verifies density equivalence (``rtol=1e-12`` unless noted).

Writes ``BENCH_regions.json`` at the repository root (override with
``--out``); ``--results-dir DIR`` additionally writes
``DIR/region_engine.json`` in the shape :mod:`repro.analysis.report`
checks.  ``--smoke`` runs a seconds-scale subset with the same schema.

Run:  ``PYTHONPATH=src python benchmarks/bench_region_engine.py``
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import numpy as np

from repro.algorithms.vb import accumulate_tile_legacy, vb
from repro.core import DomainSpec, GridSpec, PointSet, WorkCounter
from repro.core.incremental import IncrementalSTKDE
from repro.core.kernels import get_kernel
from repro.core.regions import auto_slab_voxels, plan_stamp_shards
from repro.core.stamping import stamp_batch
from repro.parallel.executors import run_threaded_stamping

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_regions.json"

#: Same paper-flavoured geometry as BENCH_stamping.json: 245-cell stamps.
GRID_VOXELS = (128, 128, 64)
HS, HT = 3.0, 2.0
THREADS_P = 4


def make_grid() -> GridSpec:
    return GridSpec(DomainSpec.from_voxels(*GRID_VOXELS), hs=HS, ht=HT)


def make_coords(grid: GridSpec, n: int, dataset: str, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    span = np.array([grid.domain.gx, grid.domain.gy, grid.domain.gt])
    if dataset == "uniform":
        return rng.uniform(0, span, size=(n, 3))
    centers = rng.uniform(0.2 * span, 0.8 * span, size=(5, 3))
    pts = centers[rng.integers(0, 5, size=n)] + rng.normal(0, 0.08, size=(n, 3)) * span
    return np.clip(pts, 0, span * (1 - 1e-9))


def best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def threads_cell(grid: GridSpec, dataset: str, n: int, repeats: int) -> dict:
    """Bbox-sharded threads vs serial engine, plus the memory comparison."""
    kern = get_kernel("epanechnikov")
    coords = make_coords(grid, n, dataset)
    norm = 1.0 / n

    vol_serial = np.zeros(grid.shape)
    vol_threads = np.zeros(grid.shape)

    def serial() -> None:
        vol_serial.fill(0.0)
        stamp_batch(vol_serial, grid, kern, coords, norm, WorkCounter())

    def threads() -> None:
        vol_threads.fill(0.0)
        run_threaded_stamping(
            vol_threads, grid, kern, coords, norm, WorkCounter(), THREADS_P
        )

    serial()  # warm the engine code path
    t_serial = best_of(serial, repeats)
    t_threads = best_of(threads, repeats)

    counters = WorkCounter()
    run_threaded_stamping(
        np.zeros(grid.shape), grid, kern, coords, norm, counters, THREADS_P
    )
    plan = plan_stamp_shards(grid, coords, THREADS_P)
    full_bytes = THREADS_P * grid.grid_bytes
    row = {
        "path": "threads-bbox",
        "dataset": dataset,
        "n": n,
        "P": THREADS_P,
        "serial_engine_seconds": t_serial,
        "threads_seconds": t_threads,
        # All shard buffers are live together between stamp and reduce, so
        # the plan's total is the peak.
        "peak_shard_buffer_bytes": plan.buffer_bytes,
        "full_private_volumes_bytes": full_bytes,
        "buffer_reduction_factor": full_bytes / max(plan.buffer_bytes, 1),
        "shard_bbox_cells": counters.shard_bbox_cells,
        "stamp_batches": counters.stamp_batches,
        "equivalent_rtol_1e12": bool(
            np.allclose(vol_threads, vol_serial, rtol=1e-12, atol=1e-18)
        ),
    }
    print(
        f"threads-bbox {dataset:10s} n={n:>7d}  serial {t_serial:7.3f}s  "
        f"threads P={THREADS_P} {t_threads:7.3f}s  buffers "
        f"{plan.buffer_bytes / 1e6:8.2f} MB vs {full_bytes / 1e6:8.2f} MB "
        f"({row['buffer_reduction_factor']:5.2f}x smaller)  "
        f"equiv={row['equivalent_rtol_1e12']}"
    )
    return row


def incremental_cell(grid: GridSpec, n: int) -> dict:
    """One window slide on a region-cached estimator vs batch recompute."""
    kern_name = "epanechnikov"
    rng = np.random.default_rng(7)
    span = np.array([grid.domain.gx, grid.domain.gy, grid.domain.gt])
    n_day = max(1, n // 8)

    def day_batch(lo: float, hi: float) -> np.ndarray:
        pts = rng.uniform(0, span, size=(n_day, 3))
        pts[:, 2] = rng.uniform(lo, hi, size=n_day)
        return pts

    day_len = float(span[2]) / 8.0
    inc = IncrementalSTKDE(grid, kernel=kern_name)
    batches = []
    for day in range(6):
        b = day_batch(day * day_len, (day + 1) * day_len)
        batches.append(b)
        inc.add(b)
    fresh = day_batch(6 * day_len, 7 * day_len)

    t0 = time.perf_counter()
    inc.slide_window(fresh, t_horizon=2 * day_len)
    t_slide = time.perf_counter() - t0

    live = np.vstack([b[b[:, 2] >= 2 * day_len] for b in batches] + [fresh])

    from repro.algorithms.pb_sym import pb_sym

    t0 = time.perf_counter()
    batch_res = pb_sym(PointSet(live), grid, kernel=kern_name)
    t_batch = time.perf_counter() - t0

    equiv = bool(
        np.allclose(
            inc.volume().data, batch_res.data, rtol=1e-9, atol=1e-14
        )
    )
    row = {
        "path": "incremental-slide",
        "dataset": "uniform-days",
        "n": int(6 * n_day + n_day),
        "slide_seconds": t_slide,
        "batch_recompute_seconds": t_batch,
        "slide_speedup_vs_recompute": t_batch / max(t_slide, 1e-12),
        "cached_buffer_cells": inc.cached_buffer_cells,
        "shard_bbox_cells": inc.counter.shard_bbox_cells,
        "equivalent_rtol_1e9": equiv,
    }
    print(
        f"incremental  n={row['n']:>7d}  slide {t_slide:7.3f}s  recompute "
        f"{t_batch:7.3f}s ({row['slide_speedup_vs_recompute']:5.2f}x)  "
        f"equiv={equiv}"
    )
    return row


def slide_pipeline_cells(grid: GridSpec, n: int, n_slides: int) -> list:
    """Sustained slides cutting through one clustered window.

    One big batch spans most of the t-domain (the backfill / dense-feed
    shape whose partial retirement is the expensive case); every slide
    feeds a small fresh batch and advances the horizon *through* the big
    batch.  The restamp-survivors baseline (``t_slab_voxels=None``)
    re-tabulates kernels for every survivor per slide; the t-slab configs
    subtract expired slabs and restamp only the straddle.  Kernel
    evaluations are deterministic (WorkCounter), wall time measured, and
    every config's final volume is pinned against a cold PB-SYM recompute
    of the live window at rtol=1e-12 in this very function.
    """
    from repro.algorithms.pb_sym import pb_sym

    span = np.array([grid.domain.gx, grid.domain.gy, grid.domain.gt])
    big = make_coords(grid, n, "clustered", seed=17)
    big[:, 2] = np.random.default_rng(18).uniform(0, 0.6 * span[2], size=n)
    n_feed = max(1, n // 20)

    def feed(k: int) -> np.ndarray:
        pts = make_coords(grid, n_feed, "clustered", seed=60 + k)
        lo = (0.62 + 0.05 * k) * span[2]
        pts[:, 2] = np.random.default_rng(80 + k).uniform(
            lo, min(lo + 0.05 * span[2], span[2] * (1 - 1e-9)), size=n_feed
        )
        return pts

    horizons = [(k + 1) * 0.55 * span[2] / (n_slides + 1)
                for k in range(n_slides)]

    rows = []
    for label, slab_voxels in (
        ("restamp-survivors", None),
        ("slabs-auto", "auto"),
        ("slabs-thin", 5),
        ("slabs-thick", 20),
    ):
        counter = WorkCounter()
        inc = IncrementalSTKDE(
            grid, counter=counter, cache_fraction=2.0,
            t_slab_voxels=slab_voxels,
        )
        inc.add(big)
        # Retirement cost in isolation: the horizon advance is timed on
        # its own (empty feed), then the arriving batch — identical work
        # in every config — is added separately.
        retired = 0
        t_slides = 0.0
        slide_evals = 0
        empty = np.empty((0, 3))
        for k in range(n_slides):
            evals0 = counter.spatial_evals + counter.temporal_evals
            t0 = time.perf_counter()
            retired += inc.slide_window(empty, t_horizon=horizons[k])
            t_slides += time.perf_counter() - t0
            slide_evals += (
                counter.spatial_evals + counter.temporal_evals - evals0
            )
            inc.add(feed(k))

        live = np.vstack(
            [big[big[:, 2] >= horizons[-1]]] + [feed(k) for k in range(n_slides)]
        )
        cold = pb_sym(PointSet(live), grid, kernel="epanechnikov")
        equiv = bool(np.allclose(
            inc.volume().data, cold.data, rtol=1e-12, atol=1e-15
        ))
        assert equiv, f"slide pipeline diverged from cold recompute ({label})"
        rows.append({
            "path": "slide-pipeline",
            "config": label,
            "t_slab_voxels": slab_voxels if slab_voxels != "auto" else
                             auto_slab_voxels(grid),
            "dataset": "clustered-window",
            "n": n,
            "feed_batch": n_feed,
            "n_slides": n_slides,
            "retired": retired,
            "slides_seconds": t_slides,
            "slide_kernel_evals": slide_evals,
            "slab_buffers_retired": counter.slab_buffers_retired,
            "slab_restamp_points": counter.slab_restamp_points,
            "cached_buffer_cells": inc.cached_buffer_cells,
            "equivalent_rtol_1e12": equiv,
        })
        print(
            f"slide-pipe   {label:18s} n={n:>7d}  {n_slides} slides "
            f"{t_slides:7.3f}s  kernel evals {slide_evals:>12d}  restamped "
            f"{counter.slab_restamp_points:>7d} pts  equiv={equiv}"
        )
    base = rows[0]
    for r in rows[1:]:
        r["kernel_eval_reduction_vs_restamp"] = (
            base["slide_kernel_evals"] / max(r["slide_kernel_evals"], 1)
        )
        r["speedup_vs_restamp"] = (
            base["slides_seconds"] / max(r["slides_seconds"], 1e-12)
        )
    return rows


def vb_tile_cell(n: int) -> dict:
    """VB through the engine tile path vs the retained legacy tile loop."""
    grid = GridSpec(DomainSpec.from_voxels(32, 32, 16), hs=2.5, ht=2.0)
    kern = get_kernel("epanechnikov")
    pts = PointSet(make_coords(grid, n, "clustered", seed=3))
    norm = grid.normalization(pts.n)

    res = vb(pts, grid)
    t_engine = res.timer.seconds["compute"]
    tiles = res.counter.tile_batches

    vol_legacy = grid.allocate()
    flat = vol_legacy.reshape(-1)
    t0 = time.perf_counter()
    for start in range(0, flat.size, 2048):
        idx = np.arange(start, min(start + 2048, flat.size))
        X, Y, T = np.unravel_index(idx, grid.shape)
        cx = grid.domain.x0 + (X + 0.5) * grid.domain.sres
        cy = grid.domain.y0 + (Y + 0.5) * grid.domain.sres
        ct = grid.domain.t0 + (T + 0.5) * grid.domain.tres
        for pstart in range(0, pts.n, 512):
            sl = slice(pstart, min(pstart + 512, pts.n))
            accumulate_tile_legacy(
                flat, idx, cx, cy, ct,
                pts.xs[sl], pts.ys[sl], pts.ts[sl],
                grid, kern, norm, WorkCounter(),
            )
    t_legacy = time.perf_counter() - t0

    row = {
        "path": "vb-tiles",
        "dataset": "clustered",
        "n": n,
        "grid_voxels": list(grid.shape),
        "engine_seconds": t_engine,
        "legacy_tile_loop_seconds": t_legacy,
        "tile_batches": tiles,
        "equivalent_rtol_1e12": bool(
            np.allclose(res.data, vol_legacy, rtol=1e-12, atol=1e-18)
        ),
    }
    print(
        f"vb-tiles     n={n:>7d}  legacy {t_legacy:7.3f}s  engine "
        f"{t_engine:7.3f}s  tiles={tiles}  equiv={row['equivalent_rtol_1e12']}"
    )
    return row


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="seconds-scale subset (n=1000 only), for CI")
    ap.add_argument("--out", type=Path, default=DEFAULT_OUT,
                    help="output JSON path (default: repo-root BENCH_regions.json)")
    ap.add_argument("--results-dir", type=Path, default=None,
                    help="also write region_engine.json here for the "
                         "analysis.report shape checks")
    args = ap.parse_args(argv)

    grid = make_grid()
    sizes = [1_000] if args.smoke else [1_000, 10_000, 100_000]
    rows = []
    for dataset in ("clustered", "uniform"):
        for n in sizes:
            repeats = 1 if n >= 100_000 else 2
            rows.append(threads_cell(grid, dataset, n, repeats))
    rows.append(incremental_cell(grid, sizes[-1]))
    rows.extend(
        slide_pipeline_cells(
            grid,
            5_000 if args.smoke else 100_000,
            n_slides=3 if args.smoke else 6,
        )
    )
    rows.append(vb_tile_cell(500 if args.smoke else 2_000))

    key = [
        r for r in rows
        if r["path"] == "threads-bbox"
        and r["dataset"] == "clustered"
        and r["n"] == sizes[-1]
    ][0]
    cpus = (
        len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity") else (os.cpu_count() or 1)
    )
    slab_auto = [
        r for r in rows
        if r["path"] == "slide-pipeline" and r["config"] == "slabs-auto"
    ][0]
    acceptance = {
        "case": f"clustered n={sizes[-1]}, P={THREADS_P}",
        "peak_shard_buffer_bytes": key["peak_shard_buffer_bytes"],
        "full_private_volumes_bytes": key["full_private_volumes_bytes"],
        "bbox_buffers_strictly_below_full_volumes": (
            key["peak_shard_buffer_bytes"] < key["full_private_volumes_bytes"]
        ),
        "buffer_reduction_factor": key["buffer_reduction_factor"],
        "threads_scaling_measurable": cpus > 1,
        "slab_kernel_eval_reduction": slab_auto[
            "kernel_eval_reduction_vs_restamp"
        ],
        "slab_kernel_evals_ge_3x_fewer": (
            slab_auto["kernel_eval_reduction_vs_restamp"] >= 3.0
        ),
        "slab_slide_speedup": slab_auto["speedup_vs_restamp"],
        "slab_slides_faster_than_restamp": (
            slab_auto["speedup_vs_restamp"] > 1.0
        ),
        "densities_equivalent_rtol_1e12": all(
            r.get("equivalent_rtol_1e12", r.get("equivalent_rtol_1e9", False))
            for r in rows
        ),
    }
    payload = {
        "benchmark": "region_engine",
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "smoke": args.smoke,
        "config": {
            "grid_voxels": list(GRID_VOXELS),
            "hs": HS,
            "ht": HT,
            "threads_P": THREADS_P,
            "cpus_available": cpus,
            "kernel": "epanechnikov",
        },
        "note": (
            "threads-bbox = run_threaded_stamping with bounding-box shard "
            "buffers (peak bytes = all P buffers live between stamp and "
            "reduce) vs the P full private volumes of the pre-regions "
            "path; incremental-slide = slide_window on a region-cached "
            "IncrementalSTKDE vs sequential PB-SYM recompute of the live "
            "window; vb-tiles = VB via the shared tile engine vs the "
            "retained legacy tile loop.  On a single-CPU container the "
            "threads rows measure overhead, not scaling."
        ),
        "results": rows,
        "acceptance": acceptance,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    if args.results_dir is not None:
        args.results_dir.mkdir(parents=True, exist_ok=True)
        mirror = args.results_dir / "region_engine.json"
        mirror.write_text(json.dumps({"rows": rows}, indent=2) + "\n")
        print(f"wrote {mirror}")
    print(f"acceptance: {json.dumps(acceptance, indent=2)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
