"""Benchmark: batched stamping engine vs. the legacy per-point loop.

Measures the PR's tentpole claim on the PB-SYM hot path: cohort-batched
tabulation + scatter accumulation (:func:`repro.core.stamping.stamp_batch`)
against the historical per-point Python loop
(:func:`repro.algorithms.pb_sym.stamp_points_sym_loop`), plus the engine's
sharded ``threads`` path at ``P=4``
(:func:`repro.parallel.executors.run_threaded_stamping`), on uniform and
clustered instances with n in {1e3, 1e4, 1e5}.

Every cell also verifies that the engine density matches the legacy loop
to ``rtol=1e-12`` — a speedup that changed the answer would be worthless.

Writes ``BENCH_stamping.json`` at the repository root (override with
``--out``).  ``--smoke`` runs a seconds-scale subset with the same schema,
for CI.

Run:  ``PYTHONPATH=src python benchmarks/bench_stamping_engine.py``
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import numpy as np

from repro.algorithms.pb_sym import stamp_points_sym_loop
from repro.core import DomainSpec, GridSpec, WorkCounter
from repro.core.kernels import get_kernel
from repro.core.stamping import stamp_batch
from repro.parallel.executors import run_threaded_stamping

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_stamping.json"

#: Paper-flavoured geometry: a city-scale grid with bandwidths a few voxels
#: wide, so a stamp is (2*3+1)^2 x (2*2+1) = 245 cells — the small-stamp
#: regime where per-point dispatch dominated the legacy loop.
GRID_VOXELS = (128, 128, 64)
HS, HT = 3.0, 2.0
THREADS_P = 4


def make_grid() -> GridSpec:
    return GridSpec(DomainSpec.from_voxels(*GRID_VOXELS), hs=HS, ht=HT)


def make_coords(grid: GridSpec, n: int, dataset: str, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    span = np.array([grid.domain.gx, grid.domain.gy, grid.domain.gt])
    if dataset == "uniform":
        return rng.uniform(0, span, size=(n, 3))
    # Mixture of 5 Gaussian clusters, mirroring tests.helpers.
    centers = rng.uniform(0.2 * span, 0.8 * span, size=(5, 3))
    pts = centers[rng.integers(0, 5, size=n)] + rng.normal(0, 0.08, size=(n, 3)) * span
    return np.clip(pts, 0, span * (1 - 1e-9))


def best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_cell(grid: GridSpec, dataset: str, n: int, repeats: int) -> dict:
    kern = get_kernel("epanechnikov")
    coords = make_coords(grid, n, dataset)
    norm = 1.0 / n

    vol_loop = np.zeros(grid.shape)
    vol_engine = np.zeros(grid.shape)
    vol_threads = np.zeros(grid.shape)

    def loop() -> None:
        vol_loop.fill(0.0)
        stamp_points_sym_loop(vol_loop, grid, kern, coords, norm, WorkCounter())

    def engine() -> None:
        vol_engine.fill(0.0)
        stamp_batch(vol_engine, grid, kern, coords, norm, WorkCounter())

    def threads() -> None:
        vol_threads.fill(0.0)
        run_threaded_stamping(
            vol_threads, grid, kern, coords, norm, WorkCounter(), THREADS_P
        )

    engine()  # warm the engine code path (first call pays imports/JIT-less setup)
    t_loop = best_of(loop, repeats)
    t_engine = best_of(engine, repeats)
    t_threads = best_of(threads, repeats)

    scale = max(np.abs(vol_loop).max(), 1e-300)
    equiv_engine = bool(np.allclose(vol_engine, vol_loop, rtol=1e-12, atol=1e-18))
    equiv_threads = bool(np.allclose(vol_threads, vol_loop, rtol=1e-12, atol=1e-18))
    row = {
        "dataset": dataset,
        "n": n,
        "legacy_loop_seconds": t_loop,
        "engine_seconds": t_engine,
        "engine_threads_p4_seconds": t_threads,
        "speedup_engine_vs_loop": t_loop / t_engine,
        "speedup_threads_p4_vs_serial_loop": t_loop / t_threads,
        "threads_p4_vs_engine_serial": t_engine / t_threads,
        "max_rel_diff_engine": float(np.abs(vol_engine - vol_loop).max() / scale),
        "equivalent_rtol_1e12_engine": equiv_engine,
        "equivalent_rtol_1e12_threads": equiv_threads,
    }
    print(
        f"{dataset:10s} n={n:>7d}  loop {t_loop:7.3f}s  engine {t_engine:7.3f}s "
        f"({row['speedup_engine_vs_loop']:5.2f}x)  threads P={THREADS_P} "
        f"{t_threads:7.3f}s ({row['speedup_threads_p4_vs_serial_loop']:5.2f}x vs loop)"
        f"  equiv={equiv_engine and equiv_threads}"
    )
    return row


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="seconds-scale subset (n=1000 only), for CI")
    ap.add_argument("--out", type=Path, default=DEFAULT_OUT,
                    help="output JSON path (default: repo-root BENCH_stamping.json)")
    args = ap.parse_args(argv)

    grid = make_grid()
    sizes = [1_000] if args.smoke else [1_000, 10_000, 100_000]
    rows = []
    for dataset in ("clustered", "uniform"):
        for n in sizes:
            repeats = 1 if n >= 100_000 else 2
            rows.append(run_cell(grid, dataset, n, repeats))

    key = [r for r in rows if r["dataset"] == "clustered" and r["n"] == sizes[-1]]
    cpus = (
        len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity") else (os.cpu_count() or 1)
    )
    acceptance = {
        "case": f"clustered n={sizes[-1]}",
        "engine_speedup_vs_legacy_loop": key[0]["speedup_engine_vs_loop"],
        "threads_p4_speedup_vs_serial_pb_sym_loop": key[0][
            "speedup_threads_p4_vs_serial_loop"
        ],
        "threads_p4_vs_engine_serial": key[0]["threads_p4_vs_engine_serial"],
        # With one CPU the threads row can only measure sharding overhead;
        # re-run on a multi-core machine to evaluate actual scaling.
        "threads_scaling_measurable": cpus > 1,
        "densities_equivalent_rtol_1e12": all(
            r["equivalent_rtol_1e12_engine"] and r["equivalent_rtol_1e12_threads"]
            for r in rows
        ),
    }
    payload = {
        "benchmark": "stamping_engine",
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "smoke": args.smoke,
        "config": {
            "grid_voxels": list(GRID_VOXELS),
            "hs": HS,
            "ht": HT,
            "stamp_cells": int((2 * grid.Hs + 1) ** 2 * (2 * grid.Ht + 1)),
            "threads_P": THREADS_P,
            "cpus_available": len(os.sched_getaffinity(0))
            if hasattr(os, "sched_getaffinity") else (os.cpu_count() or 1),
            "kernel": "epanechnikov",
        },
        "note": (
            "legacy_loop = pre-engine per-point PB-SYM hot path (the serial "
            "PB-SYM of the seed); engine = batched cohort stamping; threads "
            "= engine sharded across P workers with private volumes merged "
            "by reduction.  On a single-CPU container the threads row "
            "measures overhead, not scaling; its speedup over the legacy "
            "serial loop comes from the engine itself."
        ),
        "results": rows,
        "acceptance": acceptance,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    print(f"acceptance: {json.dumps(acceptance, indent=2)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
