"""Benchmark: batched stamping engine vs. the legacy per-point loop.

Measures the PR's tentpole claim on the PB-SYM hot path: cohort-batched
tabulation + scatter accumulation (:func:`repro.core.stamping.stamp_batch`)
against the historical per-point Python loop
(:func:`repro.algorithms.pb_sym.stamp_points_sym_loop`), plus the engine's
sharded ``threads`` path at ``P=4``
(:func:`repro.parallel.executors.run_threaded_stamping`), on uniform and
clustered instances with n in {1e3, 1e4, 1e5}.

Every cell also verifies that the engine density matches the legacy loop
to ``rtol=1e-12`` — a speedup that changed the answer would be worthless.

Writes ``BENCH_stamping.json`` at the repository root (override with
``--out``).  ``--smoke`` runs a seconds-scale subset with the same schema,
for CI.

Run:  ``PYTHONPATH=src python benchmarks/bench_stamping_engine.py``
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import numpy as np

from repro.algorithms.pb_sym import stamp_points_sym_loop
from repro.core import DomainSpec, GridSpec, WorkCounter
from repro.core.backends import available_backends, get_backend
from repro.core.kernels import get_kernel
from repro.core.stamping import stamp_batch
from repro.parallel.executors import run_threaded_stamping

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_stamping.json"

#: Paper-flavoured geometry: a city-scale grid with bandwidths a few voxels
#: wide, so a stamp is (2*3+1)^2 x (2*2+1) = 245 cells — the small-stamp
#: regime where per-point dispatch dominated the legacy loop.
GRID_VOXELS = (128, 128, 64)
HS, HT = 3.0, 2.0
THREADS_P = 4


def make_grid() -> GridSpec:
    return GridSpec(DomainSpec.from_voxels(*GRID_VOXELS), hs=HS, ht=HT)


def make_coords(grid: GridSpec, n: int, dataset: str, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    span = np.array([grid.domain.gx, grid.domain.gy, grid.domain.gt])
    if dataset == "uniform":
        return rng.uniform(0, span, size=(n, 3))
    # Mixture of 5 Gaussian clusters, mirroring tests.helpers.
    centers = rng.uniform(0.2 * span, 0.8 * span, size=(5, 3))
    pts = centers[rng.integers(0, 5, size=n)] + rng.normal(0, 0.08, size=(n, 3)) * span
    return np.clip(pts, 0, span * (1 - 1e-9))


def best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_cell(grid: GridSpec, dataset: str, n: int, repeats: int) -> dict:
    kern = get_kernel("epanechnikov")
    coords = make_coords(grid, n, dataset)
    norm = 1.0 / n

    vol_loop = np.zeros(grid.shape)
    vol_engine = np.zeros(grid.shape)
    vol_threads = np.zeros(grid.shape)

    def loop() -> None:
        vol_loop.fill(0.0)
        stamp_points_sym_loop(vol_loop, grid, kern, coords, norm, WorkCounter())

    def engine() -> None:
        vol_engine.fill(0.0)
        stamp_batch(vol_engine, grid, kern, coords, norm, WorkCounter())

    def threads() -> None:
        vol_threads.fill(0.0)
        run_threaded_stamping(
            vol_threads, grid, kern, coords, norm, WorkCounter(), THREADS_P
        )

    engine()  # warm the engine code path (first call pays imports/JIT-less setup)
    t_loop = best_of(loop, repeats)
    t_engine = best_of(engine, repeats)
    t_threads = best_of(threads, repeats)

    scale = max(np.abs(vol_loop).max(), 1e-300)
    equiv_engine = bool(np.allclose(vol_engine, vol_loop, rtol=1e-12, atol=1e-18))
    equiv_threads = bool(np.allclose(vol_threads, vol_loop, rtol=1e-12, atol=1e-18))
    row = {
        "dataset": dataset,
        "n": n,
        "legacy_loop_seconds": t_loop,
        "engine_seconds": t_engine,
        "engine_threads_p4_seconds": t_threads,
        "speedup_engine_vs_loop": t_loop / t_engine,
        "speedup_threads_p4_vs_serial_loop": t_loop / t_threads,
        "threads_p4_vs_engine_serial": t_engine / t_threads,
        "max_rel_diff_engine": float(np.abs(vol_engine - vol_loop).max() / scale),
        "equivalent_rtol_1e12_engine": equiv_engine,
        "equivalent_rtol_1e12_threads": equiv_threads,
    }
    print(
        f"{dataset:10s} n={n:>7d}  loop {t_loop:7.3f}s  engine {t_engine:7.3f}s "
        f"({row['speedup_engine_vs_loop']:5.2f}x)  threads P={THREADS_P} "
        f"{t_threads:7.3f}s ({row['speedup_threads_p4_vs_serial_loop']:5.2f}x vs loop)"
        f"  equiv={equiv_engine and equiv_threads}"
    )
    return row


#: Backends the comparison table always names.  Absent ones get a
#: ``skipped: true`` row with a reason — measured or skipped, never
#: extrapolated.
BACKEND_NAMES = ("numpy-ref", "numpy-fused", "numba")


def run_backend_rows(grid: GridSpec, n: int, repeats: int) -> list:
    """One dense clustered ``mode="pb"`` stamping row per compute backend.

    ``mode="pb"`` builds the full per-voxel product table — the
    pair-evaluation-bound profile where backend differences show; the
    sym profile is table-build-light and caps fused gains near 1.1x.
    Every measured row carries an rtol=1e-12 equivalence flag against
    the ``numpy-ref`` volume, and JIT backends report compile time
    separately (``jit_warmup_seconds``) so steady-state is what's timed.
    """
    kern = get_kernel("epanechnikov")
    coords = make_coords(grid, n, "clustered")
    norm = 1.0 / n
    vols = {name: np.zeros(grid.shape) for name in available_backends()}

    def stamp(name: str) -> None:
        vols[name].fill(0.0)
        stamp_batch(
            vols[name], grid, kern, coords, norm, WorkCounter(),
            mode="pb", compute=name,
        )

    rows = []
    t_ref = None
    for name in BACKEND_NAMES:
        if name not in available_backends():
            rows.append({
                "backend": name,
                "skipped": True,
                "reason": f"backend {name!r} not importable in this "
                          f"environment",
            })
            print(f"backend {name:12s} skipped (not importable)")
            continue
        stamp(name)  # warm: first call pays JIT compiles / setup
        t = best_of(lambda: stamp(name), repeats)
        if name == "numpy-ref":
            t_ref = t
        scale = max(np.abs(vols["numpy-ref"]).max(), 1e-300)
        row = {
            "backend": name,
            "skipped": False,
            "dataset": "clustered",
            "mode": "pb",
            "n": n,
            "seconds": t,
            "speedup_vs_numpy_ref": (t_ref / t) if t_ref else None,
            "max_rel_diff_vs_numpy_ref": float(
                np.abs(vols[name] - vols["numpy-ref"]).max() / scale
            ),
            "equivalent_rtol_1e12": bool(np.allclose(
                vols[name], vols["numpy-ref"], rtol=1e-12, atol=1e-18
            )),
            "jit_warmup_seconds": get_backend(name).warmup_seconds,
        }
        rows.append(row)
        print(
            f"backend {name:12s} n={n:>6d} mode=pb  {t:7.3f}s "
            f"({row['speedup_vs_numpy_ref']:5.2f}x vs ref)  "
            f"equiv={row['equivalent_rtol_1e12']}"
        )
    return rows


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="seconds-scale subset (n=1000 only), for CI")
    ap.add_argument("--out", type=Path, default=DEFAULT_OUT,
                    help="output JSON path (default: repo-root BENCH_stamping.json)")
    args = ap.parse_args(argv)

    grid = make_grid()
    sizes = [1_000] if args.smoke else [1_000, 10_000, 100_000]
    rows = []
    for dataset in ("clustered", "uniform"):
        for n in sizes:
            repeats = 1 if n >= 100_000 else 2
            rows.append(run_cell(grid, dataset, n, repeats))

    backend_rows = run_backend_rows(
        grid, n=2_000 if args.smoke else 10_000,
        repeats=2 if args.smoke else 3,
    )

    key = [r for r in rows if r["dataset"] == "clustered" and r["n"] == sizes[-1]]
    cpus = (
        len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity") else (os.cpu_count() or 1)
    )
    acceptance = {
        "case": f"clustered n={sizes[-1]}",
        "engine_speedup_vs_legacy_loop": key[0]["speedup_engine_vs_loop"],
        "threads_p4_speedup_vs_serial_pb_sym_loop": key[0][
            "speedup_threads_p4_vs_serial_loop"
        ],
        "threads_p4_vs_engine_serial": key[0]["threads_p4_vs_engine_serial"],
        # With one CPU the threads row can only measure sharding overhead;
        # re-run on a multi-core machine to evaluate actual scaling.
        "threads_scaling_measurable": cpus > 1,
        "densities_equivalent_rtol_1e12": all(
            r["equivalent_rtol_1e12_engine"] and r["equivalent_rtol_1e12_threads"]
            for r in rows
        ),
    }
    by_backend = {r["backend"]: r for r in backend_rows}
    fused = by_backend.get("numpy-fused", {})
    numba = by_backend.get("numba", {})
    acceptance["compute_backends"] = {
        "case": f"clustered mode=pb n={2_000 if args.smoke else 10_000}",
        "numpy_fused_speedup_vs_ref": fused.get("speedup_vs_numpy_ref"),
        "numpy_fused_meets_1_3x": bool(
            (fused.get("speedup_vs_numpy_ref") or 0.0) >= 1.3
        ),
        # Skip-or-measure: a missing numba is a skipped row with a
        # reason, never an extrapolated number.
        "numba_measured": not numba.get("skipped", True),
        "numba_speedup_vs_ref": numba.get("speedup_vs_numpy_ref"),
        "numba_meets_3x": (
            None if numba.get("skipped", True)
            else bool(numba["speedup_vs_numpy_ref"] >= 3.0)
        ),
        "backends_equivalent_rtol_1e12": all(
            r["equivalent_rtol_1e12"]
            for r in backend_rows if not r["skipped"]
        ),
    }
    payload = {
        "benchmark": "stamping_engine",
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "smoke": args.smoke,
        "config": {
            "grid_voxels": list(GRID_VOXELS),
            "hs": HS,
            "ht": HT,
            "stamp_cells": int((2 * grid.Hs + 1) ** 2 * (2 * grid.Ht + 1)),
            "threads_P": THREADS_P,
            "cpus_available": len(os.sched_getaffinity(0))
            if hasattr(os, "sched_getaffinity") else (os.cpu_count() or 1),
            "kernel": "epanechnikov",
        },
        "note": (
            "legacy_loop = pre-engine per-point PB-SYM hot path (the serial "
            "PB-SYM of the seed); engine = batched cohort stamping; threads "
            "= engine sharded across P workers with private volumes merged "
            "by reduction.  On a single-CPU container the threads row "
            "measures overhead, not scaling; its speedup over the legacy "
            "serial loop comes from the engine itself."
        ),
        "results": rows,
        "compute_backends": backend_rows,
        "acceptance": acceptance,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    print(f"acceptance: {json.dumps(acceptance, indent=2)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
