"""Figure 12 — relative critical-path length, PD vs PD-SCHED.

For the finest decomposition of the sweep (the paper uses 64^3, adjusted
per instance to the 2x-bandwidth constraint), computes ``T_inf / T_1`` of
the dependency DAG implied by each colouring, with task weights equal to
per-block point counts (the paper's "processing time proportional to the
number of points").  The claims:

* most instances sit near ~10% (Graham-capping speedup at ~6-10);
* PollenUS Hr-Hb is pathological (~55% -> speedup < 2);
* the load-aware colouring (PD-SCHED) is marginally shorter everywhere.

Standalone: ``python benchmarks/bench_fig12_critical_path.py``
"""

from __future__ import annotations

from typing import Dict, Tuple

import pytest

from repro.analysis.metrics import pd_critical_path_ratio

from .common import ALL_INSTANCES, load_instance, record
from .conftest import note_experiment

K = 64  # the paper's Figure 12 decomposition (adjusted per instance)
_CELLS: Dict[Tuple[str, str], float] = {}


def ratio(instance: str, scheduler: str) -> float:
    key = (instance, scheduler)
    if key not in _CELLS:
        _, grid, pts = load_instance(instance)
        _CELLS[key] = pd_critical_path_ratio(pts, grid, (K, K, K), scheduler)
    return _CELLS[key]


@pytest.mark.parametrize("instance", ALL_INSTANCES)
def test_fig12_critical_path(benchmark, instance):
    def both():
        return ratio(instance, "parity"), ratio(instance, "sched")

    pd, sched = benchmark.pedantic(both, rounds=1, iterations=1)
    assert 0.0 < pd <= 1.0
    assert 0.0 < sched <= 1.0


def test_fig12_report(benchmark):
    def report():
        rows = []
        print(f"\nFigure 12 — critical path / total work at {K}^3 (adjusted)")
        print(f"{'instance':18s} {'PD':>10s} {'PD-SCHED':>10s} {'speedup cap':>12s}")
        for inst in ALL_INSTANCES:
            pd = ratio(inst, "parity")
            sc = ratio(inst, "sched")
            rows.append({"instance": inst, "pd": pd, "pd_sched": sc})
            print(f"{inst:18s} {pd:10.1%} {sc:10.1%} {1 / max(sc, 1e-9):11.1f}x")
        return rows

    rows = benchmark.pedantic(report, rounds=1, iterations=1)
    record("fig12_critical_path", rows)
    note_experiment("fig12_critical_path")


if __name__ == "__main__":
    class _B:
        def pedantic(self, fn, args=(), rounds=1, iterations=1):
            return fn(*args)

    test_fig12_report(_B())
