"""Ablation — what exactly does PD-SCHED's load-aware colouring buy?

PB-SYM-PD-SCHED differs from PB-SYM-PD in *two* coupled ways: the greedy
colouring order (load-aware vs parity) and the execution style (task DAG
vs colour-class barriers).  This ablation separates them on the clustered
instances, comparing four combinations of {parity, natural-greedy,
load-aware-greedy} colouring x {barrier, DAG} execution, using analytic
point-count weights and the same list scheduler as the real algorithms.

The paper's claim to verify: most of SCHED's gain comes from removing the
barriers; the load-aware order contributes a further (marginal) critical-
path reduction but, critically, releases heavy blocks first.

Standalone: ``python benchmarks/bench_ablation_ordering.py``
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro.parallel.color import (
    greedy_coloring,
    load_order,
    natural_order,
    occupied_neighbor_map,
    parity_coloring,
)
from repro.parallel.partition import BlockDecomposition
from repro.parallel.schedule import (
    barrier_schedule,
    build_task_graph,
    critical_path,
    list_schedule,
)

from .common import PAPER_P, load_instance, record
from .conftest import note_experiment

INSTANCES = ("PollenUS_Hr-Mb", "PollenUS_Hr-Hb", "Dengue_Hr-VHb", "eBird_Lr-Hb")
K = 16
_ROWS: Dict[str, list] = {}


def analyse(instance: str) -> list:
    if instance in _ROWS:
        return _ROWS[instance]
    _, grid, pts = load_instance(instance)
    dec = BlockDecomposition.adjusted_for_pd(grid, K, K, K)
    binning = dec.bin_points_owner(pts)
    occupied = [int(b) for b in binning.occupied()]
    loads = {b: float(len(binning.points_in(b))) for b in occupied}
    adjacency = occupied_neighbor_map(dec, occupied)
    total = sum(loads.values())

    colorings = {
        "parity": parity_coloring(dec, occupied),
        "greedy-natural": greedy_coloring(dec, occupied, natural_order(occupied)),
        "greedy-load": greedy_coloring(
            dec, occupied, load_order(occupied, loads), method="load-aware"
        ),
    }
    rows = []
    for cname, coloring in colorings.items():
        graph, id_map = build_task_graph(coloring, adjacency, loads)
        tinf, _ = critical_path(graph)
        class_w = [[loads[b] for b in cls] for cls in coloring.classes()]
        barrier = barrier_schedule(class_w, PAPER_P)
        dag = list_schedule(
            graph, PAPER_P, priority=lambda v: (-graph.weights[v], v)
        ).makespan
        rows.append(
            {
                "instance": instance,
                "coloring": cname,
                "n_colors": coloring.n_colors,
                "critical_path_ratio": tinf / total,
                "barrier_speedup": total / barrier,
                "dag_speedup": total / dag,
            }
        )
    _ROWS[instance] = rows
    return rows


@pytest.mark.parametrize("instance", INSTANCES)
def test_ablation_ordering(benchmark, instance):
    rows = benchmark.pedantic(analyse, args=(instance,), rounds=1, iterations=1)
    by_name = {r["coloring"]: r for r in rows}
    # DAG execution never loses to barriers under the same colouring.
    for r in rows:
        assert r["dag_speedup"] >= r["barrier_speedup"] - 1e-9


def test_ablation_ordering_report(benchmark):
    def report():
        rows = []
        print(f"\nAblation — colouring order x execution style ({K}^3, P={PAPER_P},"
              " analytic point-count weights)")
        print(f"{'instance':16s} {'coloring':16s} {'colors':>7s} {'Tinf/T1':>9s} "
              f"{'barrier':>9s} {'taskDAG':>9s}")
        for inst in INSTANCES:
            for r in analyse(inst):
                rows.append(r)
                print(f"{r['instance']:16s} {r['coloring']:16s} "
                      f"{r['n_colors']:>7d} {r['critical_path_ratio']:>9.1%} "
                      f"{r['barrier_speedup']:>8.2f}x {r['dag_speedup']:>8.2f}x")
        return rows

    rows = benchmark.pedantic(report, rounds=1, iterations=1)
    record("ablation_ordering", rows)
    note_experiment("ablation_ordering")


if __name__ == "__main__":
    class _B:
        def pedantic(self, fn, args=(), rounds=1, iterations=1):
            return fn(*args)

    test_ablation_ordering_report(_B())
