"""Ablation — the Section 6.5 model's selection regret.

The paper's conclusion asks for a parametric model that picks the best
execution strategy per instance.  This ablation measures how good our
implementation of that model is: for each instance, the model ranks
strategies *analytically*; we then actually run a candidate set
(simulated, P=16) and compare the model's pick against the oracle best.

Reported: per-instance regret ``T(model pick) / T(oracle)`` — 1.0 means
the model picked the true winner.

Standalone: ``python benchmarks/bench_ablation_model.py``
"""

from __future__ import annotations

import math
from typing import Dict

import pytest

from repro.analysis.model import MachineModel, select_strategy
from repro.parallel.executors import MemoryBudgetExceeded

from .common import PAPER_P, load_instance, record
from .conftest import note_experiment
from .bench_fig8_dr_speedup import run_dr
from .sweeps import dd_cell, dedupe_pd_ks, pd_cell

# A representative slice: one instance per dataset/regime.
INSTANCES = (
    "Dengue_Lr-Hb", "Dengue_Hr-VHb",
    "PollenUS_Hr-Mb", "PollenUS_VHr-VLb",
    "Flu_Lr-Hb", "Flu_Hr-Lb",
    "eBird_Lr-Hb", "eBird_Hr-Lb",
)
_MACHINE: Dict[str, MachineModel] = {}
_ROWS: Dict[str, dict] = {}


def _machine() -> MachineModel:
    if "m" not in _MACHINE:
        _MACHINE["m"] = MachineModel.calibrate()
    return _MACHINE["m"]


def measured_candidates(instance: str) -> Dict[str, float]:
    """Simulated speedups of a standard candidate set at P=16."""
    out: Dict[str, float] = {}
    dr = run_dr(instance, PAPER_P)
    if dr == dr:
        out["pb-sym-dr"] = dr
    kmap = dedupe_pd_ks(instance)
    for k in (8, 16):
        c = dd_cell(instance, k)
        if c is not None:
            out[f"pb-sym-dd@{k}"] = c["speedup_p16"]
        p = pd_cell(instance, kmap[k], "sched")
        out[f"pb-sym-pd-sched@{k}"] = p["speedup_p16"]
    return out


def _run_pick(instance: str, algorithm: str, decomposition) -> float:
    """Actually execute the model's pick (simulated, P=16) -> speedup."""
    from repro.algorithms.base import get_algorithm
    from .common import pb_sym_baseline

    inst, grid, pts = load_instance(instance)
    fn = get_algorithm(algorithm)
    kwargs = {"P": PAPER_P, "backend": "simulated"}
    if decomposition is not None and algorithm != "pb-sym-dr":
        kwargs["decomposition"] = tuple(decomposition)
    if algorithm in ("pb-sym-dr", "pb-sym-pd-rep"):
        kwargs["memory_budget_bytes"] = inst.memory_budget_bytes
    try:
        res = fn(pts, grid, **kwargs)
    except MemoryBudgetExceeded:
        return float("nan")
    return pb_sym_baseline(instance) / res.meta["makespan"]


def analyse(instance: str) -> dict:
    if instance in _ROWS:
        return _ROWS[instance]
    inst, grid, pts = load_instance(instance)
    best, ranked = select_strategy(
        grid, pts, PAPER_P, machine=_machine(),
        memory_budget_bytes=inst.memory_budget_bytes,
    )
    measured = measured_candidates(instance)
    # Run the model's actual pick so regret compares real executions, not
    # a proxy from the candidate set.
    picked_sp = _run_pick(instance, best.algorithm, best.decomposition)
    if picked_sp != picked_sp:  # pick OOM'd: maximal regret vs candidates
        picked_sp = 1e-9
    measured[f"{best.algorithm}@pick"] = picked_sp
    oracle_name, oracle_sp = max(measured.items(), key=lambda kv: kv[1])
    row = {
        "instance": instance,
        "model_pick": best.algorithm,
        "model_decomposition": best.decomposition,
        "oracle": oracle_name,
        "oracle_speedup": oracle_sp,
        "picked_speedup": picked_sp,
        "regret": oracle_sp / max(picked_sp, 1e-9),
    }
    _ROWS[instance] = row
    return row


@pytest.mark.parametrize("instance", INSTANCES)
def test_ablation_model(benchmark, instance):
    row = benchmark.pedantic(analyse, args=(instance,), rounds=1, iterations=1)
    # A useful model: within an order of magnitude of the oracle
    # everywhere (ranking quality, not absolute-time prediction; the
    # analytic model does not see Python's per-replica dispatch cost,
    # which is its main blind spot — see EXPERIMENTS.md).
    assert row["regret"] < 8.0


def test_ablation_model_report(benchmark):
    def report():
        rows = [analyse(i) for i in INSTANCES]
        print(f"\nAblation — Section 6.5 model selection regret (P={PAPER_P})")
        print(f"{'instance':18s} {'model pick':>18s} {'oracle':>20s} "
              f"{'pick-sp':>8s} {'oracle-sp':>10s} {'regret':>7s}")
        for r in rows:
            print(f"{r['instance']:18s} {r['model_pick']:>18s} "
                  f"{r['oracle']:>20s} {r['picked_speedup']:>7.2f}x "
                  f"{r['oracle_speedup']:>9.2f}x {r['regret']:>7.2f}")
        mean_regret = sum(r["regret"] for r in rows) / len(rows)
        print(f"mean regret: {mean_regret:.2f}")
        return rows

    rows = benchmark.pedantic(report, rounds=1, iterations=1)
    record("ablation_model", rows)
    note_experiment("ablation_model")


if __name__ == "__main__":
    class _B:
        def pedantic(self, fn, args=(), rounds=1, iterations=1):
            return fn(*args)

    test_ablation_model_report(_B())
