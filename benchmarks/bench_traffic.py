"""Benchmark: the async traffic front end under load.

Measures the :class:`repro.serve.TrafficFrontend` contract on a
clustered live instance:

1. **Coalescing wins (closed loop)**: ``C`` concurrent single-point
   clients, each issuing ``K`` requests back-to-back, against the
   coalescing front end vs the same front end degenerated to
   per-request dispatch (``max_batch=1``).  The micro-batcher must turn
   the per-call overhead (planner, cache digest, executor hop) into a
   shared cost — acceptance: coalesced throughput >= 4x per-request on
   the same workload, answers equivalent at ``rtol=1e-9``.
2. **Open-loop latency/shed sweep**: Poisson arrivals of mixed traffic
   (single points, 8-row batches, eps-budgeted points, slices, small
   regions) at several offered loads bracketing the measured closed-loop
   capacity.  Each row records client-side p50/p95/p99 sojourn,
   achieved throughput, the coalesced-batch-size histogram, and the
   shed rate under the ``"shed"`` admission policy — acceptance: shed
   rate is exactly 0 below the admission knee (offered <= 0.5x
   capacity) and the overloaded row (2x capacity) sheds rather than
   queueing without bound, with p99 recorded at every load.

Every number is measured in-process — never extrapolated; the overload
row really offers 2x the measured capacity and really sheds.

Writes ``BENCH_traffic.json`` at the repository root (override with
``--out``); ``--results-dir DIR`` additionally writes ``DIR/traffic
.json`` in the shape :mod:`repro.analysis.report` checks.  ``--smoke``
runs a seconds-scale subset with the same schema.

Run:  ``PYTHONPATH=src python benchmarks/bench_traffic.py``
"""

from __future__ import annotations

import argparse
import asyncio
import json
import time
from pathlib import Path

import numpy as np

from repro.core import DomainSpec, GridSpec
from repro.core.grid import VoxelWindow
from repro.core.incremental import IncrementalSTKDE
from repro.serve import DensityService, Overloaded, TrafficFrontend

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_traffic.json"

#: Same paper-flavoured geometry family as the other suites, sized so
#: a single point query is overhead-dominated (the coalescer's target).
GRID_VOXELS = (64, 64, 48)
HS, HT = 3.0, 2.0

#: Mixed open-loop traffic: mostly interactive points, a trickle of
#: batched / eps-budgeted / bulk requests (weights sum to 1).
MIX = (
    ("point", 0.92),
    ("points8", 0.03),
    ("eps", 0.03),
    ("slice", 0.01),
    ("region", 0.01),
)


def make_grid() -> GridSpec:
    return GridSpec(DomainSpec.from_voxels(*GRID_VOXELS), hs=HS, ht=HT)


def make_coords(grid: GridSpec, n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    span = np.array([grid.domain.gx, grid.domain.gy, grid.domain.gt])
    centers = rng.uniform(0.2 * span, 0.8 * span, size=(5, 3))
    pts = centers[rng.integers(0, 5, size=n)] + rng.normal(0, 0.08, size=(n, 3)) * span
    return np.clip(pts, 0, span * (1 - 1e-9))


def make_service(grid: GridSpec, n: int) -> DensityService:
    """A live service over ``n`` clustered events, direct backend pinned
    (the planner is not what this suite measures)."""
    inc = IncrementalSTKDE(grid)
    inc.add(make_coords(grid, n))
    svc = DensityService(inc, backend="direct")
    # Warm the index sync so the first timed request is not a rebuild.
    svc.query_points(np.array([[1.0, 1.0, 1.0]]))
    return svc


def query_pool(grid: GridSpec, m: int, seed: int = 1) -> np.ndarray:
    rng = np.random.default_rng(seed)
    span = np.array([grid.domain.gx, grid.domain.gy, grid.domain.gt])
    return rng.uniform(0, span, size=(m, 3))


# ----------------------------------------------------------------------
# Closed loop: coalesced vs per-request
# ----------------------------------------------------------------------
async def _closed_loop(service, queries, clients, per_client, *, max_batch):
    """``clients`` concurrent single-point clients, ``per_client``
    sequential requests each; returns (wall, answers, frontend blob)."""
    fe = TrafficFrontend(
        service,
        max_batch=max_batch,
        max_delay_ms=2.0,
        # Closed loops self-limit at `clients` outstanding requests —
        # admission is not under test here, so price generously and
        # park excess in defer rather than shedding.
        max_pending_seconds=60.0,
        overload="defer",
    )
    await fe.start()
    answers = np.empty(clients * per_client)

    async def client(ci: int):
        for k in range(per_client):
            i = ci * per_client + k
            x, y, t = queries[i % len(queries)]
            answers[i] = await fe.query_point(x, y, t)

    t0 = time.perf_counter()
    await asyncio.gather(*(client(i) for i in range(clients)))
    wall = time.perf_counter() - t0
    blob = fe.frontend_stats()
    await fe.aclose()
    return wall, answers, blob


def coalesce_row(service, grid, clients, per_client) -> dict:
    queries = query_pool(grid, clients * per_client)
    total = clients * per_client

    async def run():
        per_wall, per_ans, per_blob = await _closed_loop(
            service, queries, clients, per_client, max_batch=1
        )
        co_wall, co_ans, co_blob = await _closed_loop(
            service, queries, clients, per_client, max_batch=256
        )
        return per_wall, per_ans, per_blob, co_wall, co_ans, co_blob

    per_wall, per_ans, per_blob, co_wall, co_ans, co_blob = asyncio.run(run())
    ref = service.query_points(queries[:total])
    match = bool(
        np.allclose(co_ans, per_ans, rtol=1e-9, atol=1e-15)
        and np.allclose(co_ans, ref, rtol=1e-9, atol=1e-15)
    )
    per_rps = total / per_wall
    co_rps = total / co_wall
    return {
        "path": "coalesce",
        "clients": clients,
        "requests_per_client": per_client,
        "requests": total,
        "per_request_rps": per_rps,
        "coalesced_rps": co_rps,
        "coalesce_speedup": co_rps / per_rps,
        "per_request_batches": per_blob["batches"],
        "coalesced_batches": co_blob["batches"],
        "mean_batch_rows": co_blob["mean_batch_rows"],
        "batch_rows_hist": co_blob["batch_rows_hist"],
        "coalesced_p99_ms": co_blob["latency"]["p99_ms"],
        "per_request_p99_ms": per_blob["latency"]["p99_ms"],
        "answers_match_rtol_1e9": match,
        "measured": True,
    }


# ----------------------------------------------------------------------
# Open loop: Poisson arrivals of mixed traffic at offered loads
# ----------------------------------------------------------------------
def _schedule(grid, rate, duration, seed):
    """Deterministic Poisson arrival schedule: (at, kind, payload)."""
    rng = np.random.default_rng(seed)
    kinds, weights = zip(*MIX)
    out = []
    at = 0.0
    pool = query_pool(grid, 4096, seed=seed + 1)
    i = 0
    while at < duration:
        at += rng.exponential(1.0 / rate)
        kind = kinds[int(rng.choice(len(kinds), p=weights))]
        if kind == "point":
            payload = pool[i % len(pool)].reshape(1, 3)
        elif kind == "points8":
            payload = pool[(i * 8) % (len(pool) - 8):][:8]
        elif kind == "eps":
            payload = pool[i % len(pool)].reshape(1, 3)
        elif kind == "slice":
            payload = int(rng.integers(0, grid.Gt))
        else:  # region
            x0 = int(rng.integers(0, grid.Gx - 16))
            y0 = int(rng.integers(0, grid.Gy - 16))
            t0 = int(rng.integers(0, grid.Gt - 8))
            payload = VoxelWindow(x0, x0 + 16, y0, y0 + 16, t0, t0 + 8)
        out.append((at, kind, payload))
        i += 1
    return out


async def _warm_prices(fe, grid):
    """A few unrecorded requests of every kind so the EWMA cost-scale
    correction has converged before admission decisions are measured."""
    pool = query_pool(grid, 8, seed=9)
    for _ in range(2):
        await fe.query_points(pool[:4])
        await fe.query_points(pool[:1], eps=0.3, seed=7)
        await fe.query_slice(grid.Gt // 2)
        await fe.query_region(VoxelWindow(0, 16, 0, 16, 0, 8))


async def _open_loop(service, grid, offered_rps, duration, *,
                     max_pending_seconds, seed, overload="shed"):
    fe = TrafficFrontend(
        service,
        max_batch=256,
        max_delay_ms=2.0,
        max_pending_seconds=max_pending_seconds,
        overload=overload,
    )
    await fe.start()
    await _warm_prices(fe, grid)
    sched = _schedule(grid, offered_rps, duration, seed)
    lat: list = []
    shed = 0
    done_at = [0.0]

    async def one(kind, payload):
        nonlocal shed
        t0 = time.perf_counter()
        try:
            if kind in ("point", "points8"):
                await fe.query_points(payload)
            elif kind == "eps":
                await fe.query_points(payload, eps=0.3, seed=7)
            elif kind == "slice":
                await fe.query_slice(payload)
            else:
                await fe.query_region(payload)
        except Overloaded:
            shed += 1
            return
        t1 = time.perf_counter()
        lat.append(t1 - t0)
        done_at[0] = max(done_at[0], t1)

    start = time.perf_counter()
    tasks = []
    for at, kind, payload in sched:
        delay = at - (time.perf_counter() - start)
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(asyncio.create_task(one(kind, payload)))
    await asyncio.gather(*tasks)
    blob = fe.frontend_stats()
    await fe.aclose()

    lat_ms = np.sort(np.array(lat)) * 1e3
    q = lambda p: float(lat_ms[min(len(lat_ms) - 1, int(p * len(lat_ms)))])
    return {
        "offered_rps": offered_rps,
        "duration_s": duration,
        "requests": len(sched),
        "completed": len(lat),
        "shed": shed,
        "shed_rate": shed / max(1, len(sched)),
        "achieved_rps": len(lat) / max(1e-9, done_at[0] - start),
        "p50_ms": q(0.50),
        "p95_ms": q(0.95),
        "p99_ms": q(0.99),
        "mean_batch_rows": blob["mean_batch_rows"],
        "batch_rows_hist": blob["batch_rows_hist"],
        "batches": blob["batches"],
        "deferred": blob["deferred"],
    }


def calibrate_capacity(service, grid, per_request_rps, duration) -> float:
    """Measured sustainable throughput for the *mixed* workload: offer
    well past saturation in ``defer`` mode (no shedding, the backlog
    just queues) and take the drain rate.  This — not the point-only
    closed-loop number — is the capacity the admission knee is relative
    to, because slices/regions/eps rows carry real bulk cost."""
    row = asyncio.run(_open_loop(
        service, grid, 3.0 * per_request_rps, duration,
        max_pending_seconds=60.0, seed=42, overload="defer",
    ))
    return row["achieved_rps"]


def open_loop_rows(service, grid, capacity_rps, duration, *,
                   max_pending_seconds, fractions=(0.25, 0.5, 2.0)) -> list:
    rows = []
    for frac in fractions:
        offered = max(20.0, capacity_rps * frac)
        row = asyncio.run(_open_loop(
            service, grid, offered, duration,
            max_pending_seconds=max_pending_seconds, seed=int(frac * 100),
        ))
        row.update({
            "path": "open-loop",
            "capacity_frac": frac,
            "capacity_rps": capacity_rps,
            "below_knee": frac <= 0.8,
            "mix": {k: w for k, w in MIX},
            "measured": True,
        })
        rows.append(row)
        print(
            f"  open-loop {frac:>4}x cap ({offered:8.0f} rps offered): "
            f"achieved {row['achieved_rps']:8.0f} rps, "
            f"p50 {row['p50_ms']:6.2f} ms, p99 {row['p99_ms']:7.2f} ms, "
            f"shed {row['shed']}/{row['requests']}, "
            f"mean batch {row['mean_batch_rows']:.1f}"
        )
    return rows


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="seconds-scale subset (n=20k events), for CI")
    ap.add_argument("--out", type=Path, default=DEFAULT_OUT,
                    help="output JSON path (default: repo-root BENCH_traffic.json)")
    ap.add_argument("--results-dir", type=Path, default=None,
                    help="also write traffic.json here for the "
                         "analysis.report shape checks")
    args = ap.parse_args(argv)

    grid = make_grid()
    if args.smoke:
        n, clients, per_client, duration = 20_000, 32, 8, 2.0
    else:
        n, clients, per_client, duration = 100_000, 64, 16, 5.0
    max_pending_seconds = 0.25

    print(f"building live service: n={n}, grid {'x'.join(map(str, GRID_VOXELS))}")
    service = make_service(grid, n)

    print("closed loop: coalesced vs per-request ...")
    co = coalesce_row(service, grid, clients, per_client)
    print(
        f"  per-request {co['per_request_rps']:8.0f} rps, "
        f"coalesced {co['coalesced_rps']:8.0f} rps "
        f"(speedup {co['coalesce_speedup']:.1f}x, "
        f"mean batch {co['mean_batch_rows']:.1f} rows)"
    )

    print("calibrating mixed-workload capacity (saturating defer run) ...")
    capacity = calibrate_capacity(
        service, grid, co["per_request_rps"], min(duration, 1.5)
    )
    print(f"  mixed capacity: {capacity:8.0f} rps")

    print("open loop: Poisson mixed traffic sweep ...")
    ol = open_loop_rows(
        service, grid, capacity, duration,
        max_pending_seconds=max_pending_seconds,
    )
    rows = [co] + ol

    below = [r for r in ol if r["below_knee"]]
    above = [r for r in ol if not r["below_knee"]]
    acceptance = {
        "case": f"clustered n={n}, grid {'x'.join(map(str, GRID_VOXELS))}",
        "coalesce_speedup": co["coalesce_speedup"],
        "coalesce_speedup_ge_4x": co["coalesce_speedup"] >= 4.0,
        "answers_match_rtol_1e9": co["answers_match_rtol_1e9"],
        "p99_recorded_at_every_load": all(r["p99_ms"] > 0 for r in ol),
        "shed_zero_below_knee": all(r["shed"] == 0 for r in below),
        "overload_row_sheds": all(r["shed"] > 0 for r in above),
        "coalesces_under_load": all(
            r["mean_batch_rows"] > 1.0 for r in above
        ),
    }
    payload = {
        "benchmark": "traffic_frontend",
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "smoke": args.smoke,
        "config": {
            "grid_voxels": list(GRID_VOXELS),
            "hs": HS,
            "ht": HT,
            "n_events": n,
            "clients": clients,
            "requests_per_client": per_client,
            "open_loop_duration_s": duration,
            "max_pending_seconds": max_pending_seconds,
            "mix": {k: w for k, w in MIX},
            "kernel": "epanechnikov",
        },
        "note": (
            "coalesce = C concurrent single-point clients in a closed "
            "loop against the micro-batching front end vs the same "
            "front end at max_batch=1 (per-request dispatch); the "
            "coalescer amortises per-call overhead across co-arriving "
            "requests.  open-loop = Poisson arrivals of mixed traffic "
            "(points / 8-row batches / eps-budgeted / slices / regions) "
            "at offered loads bracketing the measured closed-loop "
            "capacity: client-side sojourn percentiles, achieved "
            "throughput, batch-size histogram, and the shed rate under "
            "the cost-priced admission budget.  Below the knee the "
            "front end must shed nothing; the 2x-capacity row must shed "
            "rather than queue without bound."
        ),
        "results": rows,
        "acceptance": acceptance,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    if args.results_dir is not None:
        args.results_dir.mkdir(parents=True, exist_ok=True)
        mirror = args.results_dir / "traffic.json"
        mirror.write_text(json.dumps({"rows": rows}, indent=2) + "\n")
        print(f"wrote {mirror}")
    print(f"acceptance: {json.dumps(acceptance, indent=2)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
