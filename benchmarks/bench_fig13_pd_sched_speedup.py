"""Figure 13 — PB-SYM-PD-SCHED speedup with 16 threads.

Same sweep as Figure 11 with the load-aware colouring and task-graph
scheduling.  The paper's claims:

* significant lift over PD on the PollenUS instances (heavy blocks first);
* superlinear speedup appears on PollenUS VHr-VLb (decomposition improves
  locality relative to the sequential order — our Python runs show the
  same effect);
* Flu instances remain capped by initialisation.

Standalone: ``python benchmarks/bench_fig13_pd_sched_speedup.py``
"""

from __future__ import annotations

import pytest

from .common import ALL_INSTANCES, DECOMPOSITIONS, record
from .conftest import note_experiment
from .bench_fig11_pd_speedup import _report, sweep


@pytest.mark.parametrize("instance", ALL_INSTANCES)
def test_fig13_pd_sched(benchmark, instance):
    cells = benchmark.pedantic(sweep, args=(instance, "sched"), rounds=1, iterations=1)
    for c in cells.values():
        assert c["speedup_p16"] > 0


def test_fig13_report(benchmark):
    rows = benchmark.pedantic(_report, args=("sched", "13"), rounds=1, iterations=1)
    record("fig13_pd_sched_speedup", rows)
    note_experiment("fig13_pd_sched_speedup")


if __name__ == "__main__":
    _report("sched", "13")
