"""Figure 10 — PB-SYM-DD speedup with 16 threads, per decomposition.

Same sweep as Figure 9 (cells are shared); reports the simulated
16-processor makespan against sequential PB-SYM.  The paper's claims:

* DD beats DR overall: speedup > 8 on 9 instances;
* the peak is mid-sweep — fine decompositions balance load but the
  replication overhead eats the gain (the Section 4.2 tension);
* init-heavy (Flu) instances cap at ~2-4: parallel zeroing saturates
  memory bandwidth (modelled at 3x, the paper's measured value).

Standalone: ``python benchmarks/bench_fig10_dd_speedup.py``
"""

from __future__ import annotations

import pytest

from .common import ALL_INSTANCES, DECOMPOSITIONS, record
from .conftest import note_experiment
from .sweeps import dd_cell


@pytest.mark.parametrize("instance", ALL_INSTANCES)
def test_fig10_dd_speedup(benchmark, instance):
    def sweep():
        return [dd_cell(instance, k) for k in DECOMPOSITIONS]

    cells = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for c in cells:
        if c is not None:
            assert c["speedup_p16"] > 0


def test_fig10_report(benchmark):
    def report():
        rows = []
        print("\nFigure 10 — DD speedup at P=16 per decomposition (simulated)")
        print(f"{'instance':18s}" + "".join(f"{f'{k}^3':>9s}" for k in DECOMPOSITIONS)
              + f"{'best':>9s}")
        for inst in ALL_INSTANCES:
            line = f"{inst:18s}"
            best = 0.0
            for k in DECOMPOSITIONS:
                c = dd_cell(inst, k)
                if c is None:
                    line += f"{'skip':>9s}"
                    continue
                line += f"{c['speedup_p16']:8.2f}x"
                best = max(best, c["speedup_p16"])
                rows.append(dict(c))
            print(line + f"{best:8.2f}x")
        return rows

    rows = benchmark.pedantic(report, rounds=1, iterations=1)
    record("fig10_dd_speedup", rows)
    note_experiment("fig10_dd_speedup")


if __name__ == "__main__":
    class _B:
        def pedantic(self, fn, args=(), rounds=1, iterations=1):
            return fn(*args)

    test_fig10_report(_B())
