"""Figure 15 — best configuration of each parallel method, per instance.

The paper's summary figure: for every instance, the best speedup each
strategy achieves over its configuration sweep.  The claims:

* PB-SYM-DD leads on the Dengue instances (low overhead there);
* the SCHED/REP family is needed to unlock PollenUS;
* Flu is flat for everyone (initialisation-bound) with DR strictly worst;
* replication-friendly methods shine on eBird-Lr and die (OOM) at Hr.

This bench reuses the sweep caches populated by the Figure 8-14 benches
when run in the same session, and computes whatever is missing.

Standalone: ``python benchmarks/bench_fig15_best.py``
"""

from __future__ import annotations

import math
from typing import Dict

import pytest

from .bench_fig8_dr_speedup import PS, run_dr
from .bench_fig14_pd_rep_speedup import rep_cell
from .common import ALL_INSTANCES, DECOMPOSITIONS, record
from .conftest import note_experiment
from .sweeps import dd_cell, dedupe_pd_ks, pd_cell

METHODS = ("pb-sym-dr", "pb-sym-dd", "pb-sym-pd", "pb-sym-pd-sched", "pb-sym-pd-rep")


def best_of(instance: str) -> Dict[str, float]:
    """Best speedup per method over its configuration sweep."""
    out: Dict[str, float] = {}
    dr = [run_dr(instance, P) for P in PS]
    out["pb-sym-dr"] = max((s for s in dr if s == s), default=math.nan)
    dd = [dd_cell(instance, k) for k in DECOMPOSITIONS]
    out["pb-sym-dd"] = max(
        (c["speedup_p16"] for c in dd if c is not None), default=math.nan
    )
    kmap = dedupe_pd_ks(instance)
    for sched, name in (("parity", "pb-sym-pd"), ("sched", "pb-sym-pd-sched")):
        cells = [pd_cell(instance, kmap[k], sched) for k in DECOMPOSITIONS]
        out[name] = max(c["speedup_p16"] for c in cells)
    reps = [rep_cell(instance, kmap[k]) for k in DECOMPOSITIONS]
    out["pb-sym-pd-rep"] = max(
        (c["speedup_p16"] for c in reps if not c["oom"]), default=math.nan
    )
    return out


@pytest.mark.parametrize("instance", ALL_INSTANCES)
def test_fig15_best(benchmark, instance):
    best = benchmark.pedantic(best_of, args=(instance,), rounds=1, iterations=1)
    assert any(v == v and v > 0 for v in best.values())


def test_fig15_report(benchmark):
    def report():
        rows = []
        print("\nFigure 15 — best configuration of each method (speedup at P=16)")
        print(f"{'instance':18s}" + "".join(
            f"{m.replace('pb-sym-', ''):>10s}" for m in METHODS) + f"{'winner':>12s}")
        for inst in ALL_INSTANCES:
            best = best_of(inst)
            cells = ""
            for m in METHODS:
                v = best[m]
                cells += f"{'OOM':>10s}" if v != v else f"{v:9.2f}x"
            winner = max(
                (m for m in METHODS if best[m] == best[m]),
                key=lambda m: best[m],
            )
            rows.append({"instance": inst, **best, "winner": winner})
            print(f"{inst:18s}{cells}{winner.replace('pb-sym-', ''):>12s}")
        return rows

    rows = benchmark.pedantic(report, rounds=1, iterations=1)
    record("fig15_best", rows)
    note_experiment("fig15_best")


if __name__ == "__main__":
    class _B:
        def pedantic(self, fn, args=(), rounds=1, iterations=1):
            return fn(*args)

    test_fig15_report(_B())
