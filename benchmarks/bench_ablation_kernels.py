"""Ablation — kernel choice never changes the algorithm ranking.

DESIGN.md substitutes the standard Epanechnikov/quartic kernels for the
paper's OCR-degraded formulas.  This ablation demonstrates the
substitution is performance-neutral: for every registered kernel pair,
the sequential ranking PB > PB-BAR > PB-DISK > PB-SYM holds and the
PB-SYM/PB speedup moves by only a few percent, because the algorithms'
costs are dominated by table sizes and memory traffic, not by the exact
polynomial evaluated.

Standalone: ``python benchmarks/bench_ablation_kernels.py``
"""

from __future__ import annotations

from typing import Dict, Tuple

import pytest

from repro.algorithms.base import get_algorithm
from repro.core.kernels import available_kernels

from .common import load_instance, record
from .conftest import note_experiment

INSTANCE = "Dengue_Hr-VHb"  # the highest-leverage Table 3 row
ALGOS = ("pb", "pb-disk", "pb-bar", "pb-sym")
_CELLS: Dict[Tuple[str, str], float] = {}


def run_cell(kernel: str, algorithm: str) -> float:
    key = (kernel, algorithm)
    if key not in _CELLS:
        _, grid, pts = load_instance(INSTANCE)
        res = get_algorithm(algorithm)(pts, grid, kernel=kernel)
        _CELLS[key] = res.elapsed
    return _CELLS[key]


@pytest.mark.parametrize("kernel", available_kernels())
def test_ablation_kernel_ranking(benchmark, kernel):
    def sweep():
        return {a: run_cell(kernel, a) for a in ALGOS}

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert times["pb-sym"] < times["pb-disk"]
    assert times["pb-sym"] < times["pb-bar"] < times["pb"]


def test_ablation_kernels_report(benchmark):
    def report():
        rows = []
        print(f"\nAblation — kernel choice on {INSTANCE} (seconds)")
        print(f"{'kernel':14s}" + "".join(f"{a:>10s}" for a in ALGOS)
              + f"{'sym/pb':>9s}")
        for kern in available_kernels():
            times = {a: run_cell(kern, a) for a in ALGOS}
            sp = times["pb"] / times["pb-sym"]
            rows.append({"kernel": kern, **times, "speedup": sp})
            print(f"{kern:14s}" + "".join(f"{times[a]:10.3f}" for a in ALGOS)
                  + f"{sp:8.2f}x")
        return rows

    rows = benchmark.pedantic(report, rounds=1, iterations=1)
    record("ablation_kernels", rows)
    note_experiment("ablation_kernels")


if __name__ == "__main__":
    class _B:
        def pedantic(self, fn, args=(), rounds=1, iterations=1):
            return fn(*args)

    test_ablation_kernels_report(_B())
