"""Figure 14 — PB-SYM-PD-REP speedup with 16 threads, with OOMs.

Point decomposition with critical-path replication, swept over
decompositions under each instance's memory budget.  The paper's claims:

* speedup > 8 on 8 instances at fine decompositions;
* near-zero speedup at coarse decompositions (whole-domain blocks make
  REP degenerate to DR, paying massive init/reduce);
* Flu Hr-Lb / Flu Hr-Hb run *out of memory* at small decompositions.

Standalone: ``python benchmarks/bench_fig14_pd_rep_speedup.py``
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

import pytest

from repro.parallel import MemoryBudgetExceeded, pb_sym_pd_rep

from .common import ALL_INSTANCES, DECOMPOSITIONS, PAPER_P, load_instance, pb_sym_baseline, record
from .conftest import note_experiment
from .sweeps import dedupe_pd_ks

_CELLS: Dict[Tuple[str, int], dict] = {}


def rep_cell(instance: str, k: int) -> dict:
    key = (instance, k)
    if key in _CELLS:
        return _CELLS[key]
    inst, grid, pts = load_instance(instance)
    try:
        res = pb_sym_pd_rep(
            pts, grid, decomposition=(k, k, k), P=PAPER_P,
            backend="simulated",
            memory_budget_bytes=inst.memory_budget_bytes,
        )
        cell = {
            "instance": instance,
            "k": k,
            "decomposition": res.meta["decomposition"],
            "speedup_p16": pb_sym_baseline(instance) / res.meta["makespan"],
            "blocks_replicated": res.meta["blocks_replicated"],
            "max_replication": res.meta["max_replication"],
            "extra_mb": res.meta["extra_bytes"] / 1e6,
            "oom": False,
        }
    except MemoryBudgetExceeded:
        cell = {"instance": instance, "k": k, "speedup_p16": math.nan, "oom": True}
    _CELLS[key] = cell
    return cell


def sweep(instance: str):
    kmap = dedupe_pd_ks(instance)
    return {k: rep_cell(instance, kmap[k]) for k in DECOMPOSITIONS}


@pytest.mark.parametrize("instance", ALL_INSTANCES)
def test_fig14_pd_rep(benchmark, instance):
    cells = benchmark.pedantic(sweep, args=(instance,), rounds=1, iterations=1)
    inst, _, _ = load_instance(instance)
    if inst.copies_allowed >= 3.0:
        assert any(not c["oom"] for c in cells.values()), \
            "at least one decomposition must fit in memory"
    # Instances with < 3 volume copies of headroom (eBird-Hr) may OOM at
    # every decomposition: replica halos at bench scale are large relative
    # to their blocks.  All-OOM is then the expected Figure 14 outcome.


def test_fig14_report(benchmark):
    def report():
        rows = []
        print("\nFigure 14 — PD-REP speedup at P=16 per decomposition (OOM = memory budget)")
        print(f"{'instance':18s}" + "".join(f"{f'{k}^3':>9s}" for k in DECOMPOSITIONS)
              + f"{'best':>9s}")
        for inst in ALL_INSTANCES:
            cells = sweep(inst)
            line = f"{inst:18s}"
            best = 0.0
            for k in DECOMPOSITIONS:
                c = cells[k]
                if c["oom"]:
                    line += f"{'OOM':>9s}"
                else:
                    line += f"{c['speedup_p16']:8.2f}x"
                    best = max(best, c["speedup_p16"])
                rows.append(dict(c))
            print(line + f"{best:8.2f}x")
        return rows

    rows = benchmark.pedantic(report, rounds=1, iterations=1)
    record("fig14_pd_rep_speedup", rows)
    note_experiment("fig14_pd_rep_speedup")


if __name__ == "__main__":
    class _B:
        def pedantic(self, fn, args=(), rounds=1, iterations=1):
            return fn(*args)

    test_fig14_report(_B())
