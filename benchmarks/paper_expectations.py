"""The paper's reported numbers, transcribed for side-by-side reporting.

Table 3 is transcribed verbatim (seconds on the authors' 16-core Xeon,
C++/OpenMP).  Blank cells — configurations the paper does not report,
usually because they were too expensive — are ``None``; the harness skips
the same cells.  The figures are published as plots, so we record their
*qualitative* claims (the shapes EXPERIMENTS.md checks) rather than
digitised values.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

#: Table 3 rows: instance -> (VB, VB-DEC, PB, PB-DISK, PB-BAR, PB-SYM, speedup)
TABLE3: Dict[str, Tuple[Optional[float], ...]] = {
    "Dengue_Lr-Lb": (219.163, 2.283, 0.040, 0.029, 0.035, 0.028, 1.429),
    "Dengue_Lr-Hb": (220.591, 13.878, 1.298, 0.564, 1.152, 0.499, 2.601),
    "Dengue_Hr-Lb": (866.445, 9.522, 0.089, 0.082, 0.085, 0.084, 1.060),
    "Dengue_Hr-Hb": (871.774, 55.206, 5.169, 2.272, 4.563, 2.074, 2.492),
    "Dengue_Hr-VHb": (1056.172, 404.845, 51.885, 11.478, 42.994, 7.431, 6.982),
    "PollenUS_Lr-Lb": (518.859, 7.639, 1.106, 0.347, 0.922, 0.256, 4.320),
    "PollenUS_Hr-Lb": (12721.001, 189.337, 23.539, 7.700, 18.527, 4.708, 5.000),
    "PollenUS_Hr-Mb": (17179.482, 3126.947, 357.743, 86.129, 295.791, 57.528, 6.219),
    "PollenUS_Hr-Hb": (None, None, 2666.104, 583.175, 2212.626, 382.566, 6.969),
    "PollenUS_VHr-Lb": (None, None, 2428.126, 1004.174, 1949.988, 759.722, 3.196),
    "PollenUS_VHr-VLb": (None, None, 603.789, 240.236, 488.388, 179.834, 3.357),
    "Flu_Lr-Lb": (926.360, 3.691, 0.035, 0.032, 0.034, 0.032, 1.094),
    "Flu_Lr-Hb": (966.328, 3.797, 0.081, 0.046, 0.070, 0.042, 1.929),
    "Flu_Mr-Lb": (8591.165, 30.355, 0.305, 0.278, 0.298, 0.277, 1.101),
    "Flu_Mr-Hb": (8957.175, 32.018, 0.714, 0.384, 0.608, 0.323, 2.211),
    "Flu_Hr-Lb": (None, 536.091, 5.702, 5.089, 5.454, 5.059, 1.127),
    "Flu_Hr-Hb": (None, 591.955, 12.795, 6.822, 10.992, 7.072, 1.809),
    "eBird_Lr-Lb": (None, None, 396.811, 147.951, 322.580, 125.248, 3.168),
    "eBird_Lr-Hb": (None, None, 6969.187, 1897.051, 5611.158, 1067.395, 6.529),
    "eBird_Hr-Lb": (None, None, 8373.273, 3226.016, 6470.764, 2229.460, 3.756),
    # The paper reports a single (PB-SYM) time for eBird Hr-Hb.
    "eBird_Hr-Hb": (None, None, None, None, None, 34577.745, None),
}

TABLE3_COLUMNS = ("vb", "vb-dec", "pb", "pb-disk", "pb-bar", "pb-sym")


def table3_has(instance: str, algorithm: str) -> bool:
    """True if the paper reports this Table 3 cell (we mirror its blanks)."""
    row = TABLE3[instance]
    return row[TABLE3_COLUMNS.index(algorithm)] is not None


#: Qualitative claims per figure, checked in EXPERIMENTS.md.
FIGURE_CLAIMS: Dict[str, str] = {
    "fig7": "Flu instances are initialisation-dominated; PollenUS-Hb and "
            "eBird instances are compute-dominated; Dengue mixed.",
    "fig8": "DR speedup < 1 on init-dominated instances; > 8 at P=16 only "
            "on compute-heavy ones; OOM on Flu-Hr (P>=8) and eBird-Hr.",
    "fig9": "DD 1-thread overhead grows with decomposition; 64^3 inflates "
            "work by up to several x; PollenUS worst (495% at 64^3).",
    "fig10": "DD@16 threads: best speedups on Dengue (14.9 on Hr-VHb) and "
             "eBird Hr-Hb (14.8); Flu capped ~2-4 by the init phase.",
    "fig11": "PD speedup grows with decomposition but plateaus from the "
             "critical path; PollenUS Lr-Lb caps at 2.6.",
    "fig12": "Critical path ~10% of total work on most instances; "
             "PollenUS Hr-Hb ~55%; SCHED marginally shorter than PD.",
    "fig13": "PD-SCHED lifts PollenUS substantially; superlinear on "
             "PollenUS VHr-VLb (locality).",
    "fig14": "PD-REP > 8x on 8 instances; near 0 at coarse decompositions; "
             "Flu-Hr OOMs at small decompositions.",
    "fig15": "Best-of: DD wins Dengue; SCHED/REP wins PollenUS; Flu flat "
             "(init-bound); replication-friendly methods win eBird-Lr.",
}
