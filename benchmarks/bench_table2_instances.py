"""Table 2 — the 21 problem instances.

Prints the registry at paper scale (verbatim Table 2) and at bench scale
(the scaled twins the other benchmarks run), and times instance
construction (grid + synthetic points) as the benchmark payload.

Standalone: ``python benchmarks/bench_table2_instances.py``
"""

from __future__ import annotations

import pytest

from repro.data.datasets import get_instance, instance_names, paper_table2

from .common import record
from .conftest import note_experiment


def build_instance(name: str):
    inst = get_instance(name, "bench")
    grid = inst.grid()
    pts = inst.points()
    return inst, grid, pts


@pytest.mark.parametrize("name", instance_names())
def test_table2_instance_construction(benchmark, name):
    inst, grid, pts = benchmark.pedantic(
        build_instance, args=(name,), rounds=1, iterations=1
    )
    assert pts.n == inst.n
    assert grid.shape == (inst.Gx, inst.Gy, inst.Gt)


def test_table2_report(benchmark):
    rows = []
    for p in paper_table2():
        b = get_instance(p.name, "bench")
        rows.append(
            {
                "instance": p.name,
                "paper_n": p.n,
                "paper_grid": f"{p.Gx}x{p.Gy}x{p.Gt}",
                "paper_size_mb": p.size_mb,
                "paper_Hs": p.Hs,
                "paper_Ht": p.Ht,
                "bench_n": b.n,
                "bench_grid": f"{b.Gx}x{b.Gy}x{b.Gt}",
                "bench_Hs": b.Hs,
                "bench_Ht": b.Ht,
                "paper_ratio": round(p.compute_init_ratio, 3),
                "bench_ratio": round(b.compute_init_ratio, 3),
                "copies_allowed": round(p.copies_allowed, 1),
            }
        )

    def report():
        print("\nTable 2 — paper instances and their bench-scale twins")
        hdr = (f"{'instance':18s} {'paper n':>10s} {'paper grid':>14s} "
               f"{'Hs':>3s} {'Ht':>3s} | {'bench n':>8s} {'bench grid':>12s} "
               f"{'Hs':>3s} {'Ht':>3s} {'ratio':>8s}")
        print(hdr)
        for r in rows:
            print(
                f"{r['instance']:18s} {r['paper_n']:>10d} {r['paper_grid']:>14s} "
                f"{r['paper_Hs']:>3d} {r['paper_Ht']:>3d} | {r['bench_n']:>8d} "
                f"{r['bench_grid']:>12s} {r['bench_Hs']:>3d} {r['bench_Ht']:>3d} "
                f"{r['bench_ratio']:>8.2f}"
            )
        return rows

    benchmark.pedantic(report, rounds=1, iterations=1)
    record("table2_instances", rows)
    note_experiment("table2_instances")


if __name__ == "__main__":
    for p in paper_table2():
        print(get_instance(p.name, "bench").describe())
