"""Benchmark-session plumbing.

Prints a consolidated paper-vs-measured report at the end of the session
from the JSON rows each bench module records under ``results/``.
"""

from __future__ import annotations

import json
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"
_SESSION_EXPERIMENTS: list = []


def note_experiment(name: str) -> None:
    """Bench modules call this after recording so the session summary
    knows what ran."""
    if name not in _SESSION_EXPERIMENTS:
        _SESSION_EXPERIMENTS.append(name)


def pytest_sessionfinish(session, exitstatus):  # noqa: D401
    if not _SESSION_EXPERIMENTS:
        return
    tr = session.config.pluginmanager.get_plugin("terminalreporter")
    out = tr.write_line if tr else print
    out("")
    out("=" * 78)
    out("experiment records written this session (see EXPERIMENTS.md):")
    for name in _SESSION_EXPERIMENTS:
        path = RESULTS_DIR / f"{name}.json"
        try:
            rows = len(json.loads(path.read_text())["rows"])
        except Exception:
            rows = 0
        out(f"  results/{name}.json  ({rows} rows)")
    out("=" * 78)
