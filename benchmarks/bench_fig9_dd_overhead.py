"""Figure 9 — PB-SYM-DD single-thread overhead per decomposition.

Runs the decomposition sweep 1^3..64^3 and reports the 1-thread DD total
(bin + init + all subdomain stamps) normalised to sequential PB-SYM.  The
paper's claims:

* overhead grows with decomposition (cut cylinders recompute invariants);
* PollenUS suffers worst (495% at 64^3);
* mild decompositions can even *help* via cache locality (Flu Hr-Lb was
  9.8% faster at 16^3 in C++ — in Python, the fixed per-replica dispatch
  cost usually hides this; EXPERIMENTS.md discusses).

Cells whose predicted replica blow-up exceeds the skip cap are omitted —
the paper does the same for eBird Hr-Hb.

Standalone: ``python benchmarks/bench_fig9_dd_overhead.py``
"""

from __future__ import annotations

import pytest

from .common import ALL_INSTANCES, DECOMPOSITIONS, record
from .conftest import note_experiment
from .sweeps import dd_cell


@pytest.mark.parametrize("instance", ALL_INSTANCES)
def test_fig9_dd_overhead(benchmark, instance):
    def sweep():
        return [dd_cell(instance, k) for k in DECOMPOSITIONS]

    cells = benchmark.pedantic(sweep, rounds=1, iterations=1)
    ran = [c for c in cells if c is not None]
    assert ran, "every instance must run at least the 1^3 cell"
    # 1^3 must carry no replication at all.
    base = next(c for c in ran if c["k"] == 1)
    assert base["replication_factor"] == 1.0


def test_fig9_report(benchmark):
    def report():
        rows = []
        print("\nFigure 9 — DD 1-thread time relative to PB-SYM (replication in parens)")
        print(f"{'instance':18s}" + "".join(f"{f'{k}^3':>14s}" for k in DECOMPOSITIONS))
        for inst in ALL_INSTANCES:
            line = f"{inst:18s}"
            for k in DECOMPOSITIONS:
                c = dd_cell(inst, k)
                if c is None:
                    line += f"{'skip':>14s}"
                    rows.append({"instance": inst, "k": k, "skipped": True})
                else:
                    line += f"{c['overhead_vs_pb_sym']:7.2f}({c['replication_factor']:4.1f})"
                    rows.append({k2: v for k2, v in c.items()})
            print(line)
        return rows

    rows = benchmark.pedantic(report, rounds=1, iterations=1)
    record("fig9_dd_overhead", rows)
    note_experiment("fig9_dd_overhead")


if __name__ == "__main__":
    class _B:
        def pedantic(self, fn, args=(), rounds=1, iterations=1):
            return fn(*args)

    test_fig9_report(_B())
