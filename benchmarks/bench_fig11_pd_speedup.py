"""Figure 11 — PB-SYM-PD speedup with 16 threads, per decomposition.

The parity-coloured point decomposition.  The paper's claims:

* speedup generally increases with the decomposition (more, smaller
  blocks = more parallelism) but undersized decompositions are adjusted
  to the 2x-bandwidth constraint (collapsed cells appear once here);
* the ceiling is load imbalance/critical path, not work: PollenUS Lr-Lb
  never exceeds 2.6 in the paper.

Standalone: ``python benchmarks/bench_fig11_pd_speedup.py``
"""

from __future__ import annotations

import pytest

from .common import ALL_INSTANCES, DECOMPOSITIONS, record
from .conftest import note_experiment
from .sweeps import dedupe_pd_ks, pd_cell


def sweep(instance: str, scheduler: str):
    kmap = dedupe_pd_ks(instance)
    cells = {}
    for k in DECOMPOSITIONS:
        cells[k] = pd_cell(instance, kmap[k], scheduler)
    return cells


@pytest.mark.parametrize("instance", ALL_INSTANCES)
def test_fig11_pd(benchmark, instance):
    cells = benchmark.pedantic(sweep, args=(instance, "parity"), rounds=1, iterations=1)
    for c in cells.values():
        assert c["speedup_p16"] > 0
        assert c["n_colors"] <= 8  # parity colouring


def _report(scheduler: str, figure: str):
    rows = []
    print(f"\nFigure {figure} — {'PD' if scheduler == 'parity' else 'PD-SCHED'} "
          f"speedup at P=16 per requested decomposition (simulated)")
    print(f"{'instance':18s}" + "".join(f"{f'{k}^3':>9s}" for k in DECOMPOSITIONS)
          + f"{'best':>9s}")
    for inst in ALL_INSTANCES:
        cells = sweep(inst, scheduler)
        line = f"{inst:18s}"
        best = 0.0
        for k in DECOMPOSITIONS:
            c = cells[k]
            line += f"{c['speedup_p16']:8.2f}x"
            best = max(best, c["speedup_p16"])
            rows.append({"requested_k": k, **c})
        print(line + f"{best:8.2f}x")
    return rows


def test_fig11_report(benchmark):
    rows = benchmark.pedantic(_report, args=("parity", "11"), rounds=1, iterations=1)
    record("fig11_pd_speedup", rows)
    note_experiment("fig11_pd_speedup")


if __name__ == "__main__":
    _report("parity", "11")
